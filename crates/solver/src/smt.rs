//! The SMT facade: satisfiability and validity of refinement formulas.
//!
//! [`Smt`] combines the encoder ([`crate::encode`]), the CDCL SAT solver
//! ([`crate::sat`]) and the linear integer arithmetic solver
//! ([`crate::lia`]) into a lazy DPLL(T) loop:
//!
//! 1. the formula is encoded into a boolean skeleton over theory atoms and
//!    converted to CNF with the Tseitin transformation;
//! 2. the SAT solver proposes a boolean model;
//! 3. the arithmetic literals implied by the model are checked by the LIA
//!    solver; if they are inconsistent, a blocking clause over the atom
//!    literals is added and the loop repeats.
//!
//! This plays the role that Z3 plays for the original Synquid
//! implementation (see DESIGN.md for the substitution rationale).

use crate::cache::SharedValidityCache;
use crate::cancel::CancellationToken;
use crate::encode::{Encoded, Encoder, Skeleton, TheoryAtom};
use crate::lia::{IncrementalLia, LiaResult, LiaSolver};
use crate::rational::Rational;
use crate::sat::{Lit, SatResult, SatSolver};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use synquid_logic::Term;
use synquid_telemetry::{events, events::Event, Phase, PhaseProfile};

/// Result of an SMT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SmtResult {
    /// The formula is satisfiable.
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The solver gave up (budget exhaustion); callers treat this as
    /// "possibly satisfiable".
    Unknown,
}

impl SmtResult {
    /// True unless the result is [`SmtResult::Unsat`].
    pub fn possibly_sat(self) -> bool {
        !matches!(self, SmtResult::Unsat)
    }
}

/// Statistics accumulated by an [`Smt`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmtStats {
    /// Number of satisfiability queries answered.
    pub queries: usize,
    /// Number of queries answered from the instance-local memo cache.
    pub cache_hits: usize,
    /// Number of queries answered from the attached shared validity
    /// cache (zero when no cache is attached).
    pub shared_hits: usize,
    /// Subset of `shared_hits` whose cached verdict was `Unsat` (the
    /// entailment held) — the negative results the paper's solver burns
    /// most of its time on.
    pub shared_negative_hits: usize,
    /// Queries that consulted the shared cache and missed.
    pub shared_misses: usize,
    /// Number of SAT-solver invocations across all queries.
    pub sat_calls: usize,
    /// Number of LIA checks across all queries.
    pub theory_calls: usize,
    /// Theory conflicts learned and persisted across queries (the
    /// incremental DPLL(T) state).
    pub conflicts_learned: usize,
    /// Persisted theory conflicts replayed into a later query that shared
    /// the conflict's atoms — each replay pre-prunes every boolean model
    /// that would have re-triggered the same theory conflict.
    pub conflicts_reused: usize,
    /// Duplicate assumption conjuncts dropped by the environment's
    /// assumption extractor before reaching this solver (recorded here so
    /// the counter rides the existing stats plumbing).
    pub assumptions_dropped: usize,
    /// Whole MUS enumerations answered from the incremental memo — each
    /// hit spares the complete MARCO loop (dozens of subset
    /// satisfiability checks) the abduction loop would otherwise repeat.
    pub mus_memo_hits: usize,
    /// Theory checks served by an already-warm simplex tableau (every
    /// check of a DPLL(T) query after the first, when the incremental
    /// LIA path is on): these reuse the tableau's rows and basis instead
    /// of rebuilding and re-substituting slack rows from scratch.
    pub tableau_warm_starts: usize,
    /// Bound-implication clauses installed between comparison atoms over
    /// the same linear combination but *different* constants (`d ≤ c₁ ⟹
    /// d ≤ c₂` for `c₁ ≤ c₂`, and the lower/exclusivity/totality
    /// variants). Each is a derived bound fact propagated into the SAT
    /// trail by unit propagation, killing boolean models — and whole
    /// candidate families — without an LIA call.
    pub bounds_propagated: usize,
    /// MUS enumerations that ran against one shared encoding with
    /// selector-literal subset activation, instead of re-encoding
    /// `background ∧ subset` per oracle call.
    pub mus_shared_encodings: usize,
    /// Estimated simplex pivots saved by warm tableau starts, summed
    /// over all queries: per warm check, the query's cold first-solve
    /// pivot count minus the warm check's own, clamped at zero. An
    /// estimate — the baseline is the same query's first solve, not a
    /// from-scratch rerun of each check.
    pub lia_pivots_saved: usize,
    /// Per-phase wall-time attribution of the work done *inside* this
    /// instance's queries (cache-lookup, encode, SAT, LIA, core-shrink),
    /// captured per `Smt::check_query` call when span profiling is on
    /// (see [`synquid_telemetry`]) and empty otherwise. This is the
    /// solver-side subset of a synthesis run's profile: the synthesizer
    /// windows the whole run on the same thread-local spans, so these
    /// timings are *already included* there — merge one or the other
    /// into reports, never both.
    pub phases: PhaseProfile,
}

/// The SMT solver facade.
///
/// Results are memoized per formula: liquid type checking re-issues the
/// same verification conditions many times while the synthesizer
/// backtracks, so the cache removes most of the redundant work (the cache
/// is sound because queries are self-contained formulas with no
/// incremental assertions).
#[derive(Debug)]
pub struct Smt {
    stats: SmtStats,
    /// Maximum number of DPLL(T) iterations per query.
    pub max_iterations: usize,
    cache: std::collections::HashMap<Term, SmtResult>,
    /// Optional cross-instance validity cache (see [`SharedValidityCache`]):
    /// consulted after the local memo, keyed by normalized
    /// `(antecedent, consequent)` pairs.
    shared: Option<SharedValidityCache>,
    /// Wall-clock deadline; solving loops poll it and abort with
    /// [`SmtResult::Unknown`] once it passes.
    deadline: Option<Instant>,
    /// Cooperative cancellation, polled alongside the deadline.
    cancel: Option<CancellationToken>,
    /// True when the *last* query aborted on deadline/cancellation — its
    /// `Unknown` reflects the budget, not the formula, and must never be
    /// cached.
    interrupted: bool,
    /// The incremental DPLL(T) state persisted across `check_query`
    /// calls: theory conflicts learned in one query, replayed into every
    /// later query that contains the conflict's atoms. `None` disables
    /// persistence (the from-scratch baseline the parity tests compare
    /// against).
    lemmas: Option<LemmaStore>,
    /// Lemmas inherited from a resident session, frozen at the batch
    /// boundary: replayed exactly like privately learned ones, but
    /// identical for every solver of the run (so results cannot depend
    /// on worker scheduling). Cleared together with `lemmas` when
    /// incrementality is disabled.
    lemma_seed: Option<crate::lemmas::LemmaSeed>,
    /// Where freshly learned conflicts are published for *future* runs
    /// of the owning session (never read back within this run).
    lemma_sink: Option<crate::lemmas::SharedLemmaStore>,
    /// When true (the default), each DPLL(T) query keeps one warm
    /// [`IncrementalLia`] tableau across all of its theory checks
    /// (including core shrinking and MUS subset oracles). When false,
    /// every theory check builds a fresh from-scratch [`LiaSolver`] —
    /// the `without_incremental_lia` ablation baseline.
    incremental_lia: bool,
    /// Memoized MUS enumerations (see [`crate::mus::enumerate_mus_smt`]):
    /// the liquid-abduction loop re-derives the *same* strengthening
    /// problem for every candidate program that shares a VC skeleton, so
    /// the full MARCO enumeration — dozens of subset oracle calls plus
    /// their bookkeeping — repeats verbatim. The enumeration result is a
    /// pure function of `(background, soft, required, budgets)`, so it is
    /// persisted alongside the theory lemmas (and disabled with them).
    mus_memo: Option<HashMap<MusMemoKey, Vec<std::collections::BTreeSet<usize>>>>,
}

/// Key of one memoized MUS enumeration. The enumeration budgets are part
/// of the key so differently-configured calls can never alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MusMemoKey {
    pub(crate) background: Term,
    pub(crate) soft: Vec<Term>,
    pub(crate) required: Vec<usize>,
    pub(crate) max_muses: usize,
    pub(crate) max_checks: usize,
}

/// Learned theory conflicts, keyed portably (see
/// [`Encoded::portable_atom_key`]) so they survive the per-query atom
/// renumbering. A lemma `{(a₁,v₁) … (aₖ,vₖ)}` records that the theory
/// atoms `aᵢ` taken at truth values `vᵢ` are jointly LIA-inconsistent —
/// a fact about the formulas themselves, valid in any query in which all
/// of them appear.
#[derive(Debug, Default)]
struct LemmaStore {
    /// Each lemma's literals, sorted by key.
    lemmas: Vec<Vec<(String, bool)>>,
    /// First (smallest) key of each lemma → lemma indices, for cheap
    /// applicability probing.
    index: HashMap<String, Vec<usize>>,
    /// Dedup guard.
    seen: HashSet<Vec<(String, bool)>>,
}

impl LemmaStore {
    /// Hard bound on persisted lemmas: enough for the longest synthesis
    /// runs observed (a few thousand distinct conflicts), small enough
    /// that applicability probing stays cheap.
    const MAX_LEMMAS: usize = 8_192;

    fn insert(&mut self, mut lemma: Vec<(String, bool)>) -> bool {
        if self.lemmas.len() >= Self::MAX_LEMMAS {
            return false;
        }
        lemma.sort();
        if !self.seen.insert(lemma.clone()) {
            return false;
        }
        let id = self.lemmas.len();
        self.index.entry(lemma[0].0.clone()).or_default().push(id);
        self.lemmas.push(lemma);
        true
    }
}

impl Default for Smt {
    fn default() -> Smt {
        Smt::new()
    }
}

impl Smt {
    /// Creates a solver with default budgets.
    pub fn new() -> Smt {
        Smt {
            stats: SmtStats::default(),
            max_iterations: 2_000,
            cache: std::collections::HashMap::new(),
            shared: None,
            deadline: None,
            cancel: None,
            interrupted: false,
            lemmas: Some(LemmaStore::default()),
            lemma_seed: None,
            lemma_sink: None,
            incremental_lia: true,
            mus_memo: Some(HashMap::new()),
        }
    }

    /// Attaches the resident lemma state of a session: a frozen seed to
    /// replay from and the shared store where fresh conflicts are
    /// published for future runs. Ignored (and cleared) when
    /// [`set_incremental`](Smt::set_incremental) later disables
    /// incrementality — ablated runs must neither benefit from nor feed
    /// the resident pool.
    pub fn attach_lemma_session(
        &mut self,
        seed: crate::lemmas::LemmaSeed,
        sink: crate::lemmas::SharedLemmaStore,
    ) {
        self.lemma_seed = Some(seed);
        self.lemma_sink = Some(sink);
    }

    /// Looks up a memoized MUS enumeration.
    pub(crate) fn mus_memo_lookup(
        &mut self,
        key: &MusMemoKey,
    ) -> Option<Vec<std::collections::BTreeSet<usize>>> {
        let found = self.mus_memo.as_ref().and_then(|m| m.get(key).cloned());
        if found.is_some() {
            self.stats.mus_memo_hits += 1;
        }
        found
    }

    /// Memoizes a completed MUS enumeration. Callers must not memoize
    /// enumerations whose oracle was interrupted by the deadline — those
    /// results reflect the budget, not the problem.
    pub(crate) fn mus_memo_insert(
        &mut self,
        key: MusMemoKey,
        muses: Vec<std::collections::BTreeSet<usize>>,
    ) {
        const MAX_ENTRIES: usize = 50_000;
        if let Some(memo) = &mut self.mus_memo {
            if memo.len() < MAX_ENTRIES || memo.contains_key(&key) {
                memo.insert(key, muses);
            }
        }
    }

    /// Sets (or clears) the wall-clock deadline polled inside the solving
    /// loops. A query running when the deadline passes aborts with
    /// [`SmtResult::Unknown`]; callers treat that as "possibly sat",
    /// which can only make proofs fail, never succeed spuriously.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Attaches a cancellation token, polled alongside the deadline.
    pub fn set_cancellation(&mut self, cancel: Option<CancellationToken>) {
        self.cancel = cancel;
    }

    /// Enables or disables the incremental DPLL(T) state (cross-query
    /// theory-conflict persistence). Enabled by default; disabling resets
    /// the store, giving the from-scratch behaviour.
    pub fn set_incremental(&mut self, incremental: bool) {
        self.lemmas = incremental.then(LemmaStore::default);
        self.mus_memo = incremental.then(HashMap::new);
        if !incremental {
            self.lemma_seed = None;
            self.lemma_sink = None;
        }
    }

    /// Enables or disables the warm incremental-LIA tableau (on by
    /// default). Disabling gives the from-scratch per-check baseline the
    /// `without_incremental_lia` ablation and the differential fuzz
    /// oracle compare against; verdicts are unaffected either way.
    pub fn set_incremental_lia(&mut self, incremental: bool) {
        self.incremental_lia = incremental;
    }

    /// True if the deadline has passed or cancellation was requested.
    /// Cheap enough to poll once per SAT/LIA step.
    fn interrupt_requested(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return true;
            }
        }
        match self.deadline {
            Some(d) => Instant::now() > d,
            None => false,
        }
    }

    /// True when the last query aborted on deadline/cancellation rather
    /// than deciding the formula.
    pub fn last_query_interrupted(&self) -> bool {
        self.interrupted
    }

    /// Creates a solver attached to a shared validity cache.
    pub fn with_cache(cache: SharedValidityCache) -> Smt {
        let mut smt = Smt::new();
        smt.attach_cache(cache);
        smt
    }

    /// Attaches a shared validity cache; subsequent queries consult and
    /// populate it (in addition to the instance-local memo).
    pub fn attach_cache(&mut self, cache: SharedValidityCache) {
        self.shared = Some(cache);
    }

    /// The attached shared validity cache, if any.
    pub fn shared_cache(&self) -> Option<&SharedValidityCache> {
        self.shared.as_ref()
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> SmtStats {
        self.stats
    }

    /// Records duplicate assumption conjuncts dropped upstream (by the
    /// typing environment's assumption extractor) so the counter reaches
    /// reports through the existing stats plumbing.
    pub fn add_assumptions_dropped(&mut self, n: usize) {
        self.stats.assumptions_dropped += n;
    }

    /// Checks whether `formula` is satisfiable.
    pub fn check_sat(&mut self, formula: &Term) -> SmtResult {
        self.check_sat_conj(std::slice::from_ref(formula))
    }

    /// Checks whether the conjunction of `formulas` is satisfiable.
    ///
    /// The formulas are conjoined *before* encoding so that the finite
    /// universe used by set elimination covers element terms and witnesses
    /// from every conjunct (this matters for entailments whose premise
    /// contains positive set equalities).
    pub fn check_sat_conj(&mut self, formulas: &[Term]) -> SmtResult {
        let conj = Term::conjunction(formulas.iter().cloned());
        // A plain satisfiability check is the degenerate validity query
        // with consequent `false`: sat(f) is the complement of
        // valid(f ⇒ false).
        self.check_query(conj, Term::ff())
    }

    /// Checks whether `formula` is valid (true in all models).
    pub fn is_valid(&mut self, formula: &Term) -> bool {
        matches!(
            self.check_query(Term::tt(), formula.clone()),
            SmtResult::Unsat
        )
    }

    /// Checks whether `premise ⇒ conclusion` is valid.
    pub fn entails(&mut self, premise: &Term, conclusion: &Term) -> bool {
        matches!(
            self.check_query(premise.clone(), conclusion.clone()),
            SmtResult::Unsat
        )
    }

    /// The single query funnel: solves `sat(antecedent ∧ ¬consequent)`
    /// through the local memo and the shared validity cache. Every public
    /// query entry point reduces to this, so all of them share both
    /// cache layers under consistent `(antecedent, consequent)` keys.
    ///
    /// When span profiling is on, the phase-time delta of the query is
    /// folded into [`SmtStats::phases`]; when the event sink is open,
    /// queries slower than 25 ms are captured with their formulas
    /// (`smt_query` events — the raw material solver-benchmark fixtures
    /// are transcribed from).
    fn check_query(&mut self, antecedent: Term, consequent: Term) -> SmtResult {
        let profile_base = synquid_telemetry::profiling_enabled().then(synquid_telemetry::snapshot);
        let capture = events::events_enabled().then(Instant::now);
        let result = self.check_query_inner(&antecedent, &consequent);
        if let Some(base) = profile_base {
            self.stats
                .phases
                .merge(&synquid_telemetry::snapshot().delta_since(&base));
        }
        if let Some(started) = capture {
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            if elapsed_ms >= 25.0 {
                events::emit(|| {
                    Event::new("smt_query")
                        .f64("elapsed_ms", elapsed_ms)
                        .str("result", format!("{result:?}"))
                        .str("antecedent", antecedent.to_string())
                        .str("consequent", consequent.to_string())
                });
            }
        }
        result
    }

    fn check_query_inner(&mut self, antecedent: &Term, consequent: &Term) -> SmtResult {
        self.stats.queries += 1;
        self.interrupted = false;
        let formula = if consequent.is_false() {
            antecedent.clone()
        } else {
            antecedent.clone().and(consequent.clone().not())
        };
        let cache_span = synquid_telemetry::span(Phase::CacheLookup);
        if let Some(cached) = self.cache.get(&formula) {
            self.stats.cache_hits += 1;
            events::emit(|| Event::new("cache_hit").str("layer", "local"));
            return *cached;
        }
        // Normalize once, outside the cache's lock, and reuse the
        // normalized pair for both the lookup and the insert.
        let query = self
            .shared
            .as_ref()
            .map(|_| SharedValidityCache::normalize(antecedent, consequent));
        if let (Some(shared), Some(query)) = (&self.shared, &query) {
            if let Some(cached) = shared.lookup_normalized(query) {
                self.stats.shared_hits += 1;
                if cached == SmtResult::Unsat {
                    self.stats.shared_negative_hits += 1;
                }
                if self.cache.len() < 200_000 {
                    self.cache.insert(formula, cached);
                }
                events::emit(|| Event::new("cache_hit").str("layer", "shared"));
                return cached;
            }
            self.stats.shared_misses += 1;
            events::emit(|| Event::new("cache_miss").str("layer", "shared"));
        }
        drop(cache_span);
        // Out of budget: answer `Unknown` without solving or caching (the
        // verdict reflects the budget, not the formula).
        if self.interrupt_requested() {
            self.interrupted = true;
            return SmtResult::Unknown;
        }
        let problem = {
            let _encode_span = synquid_telemetry::span(Phase::Encode);
            let mut encoder = Encoder::new();
            let skeleton = encoder.encode(&formula);
            encoder.finish(skeleton)
        };
        let result = self.solve_encoded(&problem, &[]);
        if self.interrupted {
            return result;
        }
        if self.cache.len() < 200_000 {
            self.cache.insert(formula, result);
        }
        // `Sat`/`Unsat` are pure functions of the formula and safe to
        // share. A budget `Unknown` (DPLL(T) iteration or LIA branch
        // limit) is *not*: whether those limits are hit depends on this
        // instance's accumulated lemma store, so publishing it would make
        // other goals' verdicts depend on which worker got there first.
        // The instance-local cache may keep it — a single instance's
        // lemma store grows along one deterministic execution.
        if !matches!(result, SmtResult::Unknown) {
            if let (Some(shared), Some(query)) = (&self.shared, &query) {
                shared.insert_normalized(query, result);
            }
        }
        result
    }

    /// Low-level entry point: checks the conjunction of already-encoded
    /// skeletons. Builds a one-shot [`EncodedSession`] and solves it with
    /// no assumptions; the MUS enumerator instead keeps its session alive
    /// across subset checks (see [`Smt::begin_session`]).
    pub(crate) fn solve_encoded(&mut self, problem: &Encoded, roots: &[Skeleton]) -> SmtResult {
        // Trivial short-circuit.
        if roots.iter().any(|r| matches!(r, Skeleton::False)) {
            return SmtResult::Unsat;
        }
        let mut session = self.begin_session(problem, roots);
        self.solve_session(&mut session, problem, &[])
    }

    /// Builds a reusable DPLL(T) session for one encoded problem: the SAT
    /// solver loaded with the skeletons, side conditions, bound-
    /// implication axioms and replayed lemmas, plus (when the incremental
    /// LIA path is on) one warm simplex tableau that will serve *every*
    /// theory check issued through this session — main-loop checks, core
    /// shrinking, and MUS subset oracles alike.
    pub(crate) fn begin_session(
        &mut self,
        problem: &Encoded,
        roots: &[Skeleton],
    ) -> EncodedSession {
        let mut sat = SatSolver::new();
        // One SAT variable per theory atom, allocated up front so atom index
        // and SAT variable coincide.
        sat.reserve_vars(problem.atoms.len());
        let mut tseitin = Tseitin { sat: &mut sat };
        for root in roots
            .iter()
            .chain(std::iter::once(&problem.skeleton))
            .chain(problem.side_conditions.iter())
        {
            tseitin.assert_root(root);
        }
        // Eagerly assert the bound-implication lattice between comparison
        // atoms over the same linear combination (same or different
        // constants: x ≤ y vs x > y, x ≤ 3 vs x ≤ 5, …). Without these
        // lemmas the SAT solver proposes many boolean models that differ
        // only in mutually inconsistent comparisons, each of which costs
        // a theory conflict; with them, most such models are pruned
        // propositionally, and a bound proved for one atom propagates to
        // every weaker atom over the same combination by unit propagation.
        let (axioms, cross_bound) = bound_axioms(problem);
        self.stats.bounds_propagated += cross_bound;
        for clause in axioms {
            sat.add_clause(clause);
        }

        // Replay persisted theory conflicts whose atoms all occur in this
        // problem: each replayed lemma is asserted as a blocking clause up
        // front, pruning every boolean model that would have re-derived
        // the same conflict through a SAT + LIA round trip.
        let atom_keys: Vec<Option<String>> = if self.lemmas.is_some() {
            (0..problem.atoms.len())
                .map(|i| problem.portable_atom_key(i))
                .collect()
        } else {
            Vec::new()
        };
        if let Some(store) = &self.lemmas {
            let mut by_key: HashMap<&str, usize> = HashMap::new();
            for (idx, key) in atom_keys.iter().enumerate() {
                if let Some(key) = key {
                    // First occurrence wins; duplicates cannot arise from
                    // one encoder, which dedups atoms by key.
                    by_key.entry(key).or_insert(idx);
                }
            }
            // Maps a lemma's literals onto this problem's atom indices;
            // `None` if some atom is absent (the lemma does not apply).
            let clause_of = |lemma: &[(String, bool)]| -> Option<Vec<Lit>> {
                lemma
                    .iter()
                    .map(|(key, value)| by_key.get(key.as_str()).map(|&idx| Lit::new(idx, !*value)))
                    .collect()
            };
            // Probe the run-private store by this problem's atom keys
            // (each lemma is indexed under exactly one bucket — its
            // smallest key — so no lemma is visited twice): cost
            // proportional to the query's atoms, not to the whole
            // accumulated store.
            let mut replayed: Vec<Vec<Lit>> = Vec::new();
            for first_key in by_key.keys() {
                let Some(ids) = store.index.get(*first_key) else {
                    continue;
                };
                for &id in ids {
                    if let Some(clause) = clause_of(&store.lemmas[id]) {
                        replayed.push(clause);
                    }
                }
            }
            // Then the session seed (lemmas inherited from earlier runs).
            // A seeded lemma can never coincide with a run-learned one:
            // learning requires the SAT core to violate it, which the
            // already-asserted replay clause makes impossible. Replayed
            // seed lemmas are reported back to the resident store so the
            // epoch GC sees them as live.
            if let Some(seed) = &self.lemma_seed {
                let mut touched: Vec<&crate::lemmas::Lemma> = Vec::new();
                for first_key in by_key.keys() {
                    for &id in seed.ids_for_first_key(first_key) {
                        let lemma = seed.lemma(id);
                        if let Some(clause) = clause_of(lemma) {
                            replayed.push(clause);
                            touched.push(lemma);
                        }
                    }
                }
                if let (Some(sink), false) = (&self.lemma_sink, touched.is_empty()) {
                    sink.touch_all(touched);
                }
            }
            // HashMap iteration order is nondeterministic; the clause set
            // is order-independent for correctness, but sort anyway so a
            // run's SAT search (and hence its timing profile) is
            // reproducible.
            replayed.sort();
            self.stats.conflicts_reused += replayed.len();
            if !replayed.is_empty() {
                events::emit(|| Event::new("lemma_replay").uint("n", replayed.len() as u64));
            }
            for clause in replayed {
                sat.add_clause(clause);
            }
        }

        EncodedSession {
            sat,
            lia: self
                .incremental_lia
                .then(|| IncrementalLia::new(problem.num_arith_vars)),
            atom_keys,
        }
    }

    /// One theory check through the session's LIA backend: the warm
    /// tableau when the incremental path is on, a from-scratch solver
    /// otherwise. The deadline is refreshed per check so a single
    /// branch-and-bound search never outlives the query budget.
    fn theory_check(
        &self,
        session: &mut EncodedSession,
        num_arith_vars: usize,
        constraints: &[crate::lia::Constraint],
    ) -> LiaResult {
        match &mut session.lia {
            Some(inc) => {
                inc.deadline = self.deadline;
                inc.check(constraints)
            }
            None => {
                let mut lia = LiaSolver::new();
                lia.deadline = self.deadline;
                lia.check(num_arith_vars, constraints)
            }
        }
    }

    /// Runs the DPLL(T) loop of a session under the given assumption
    /// literals. `Unsat` means the problem plus assumptions is
    /// unsatisfiable. Sound to call repeatedly with different assumption
    /// sets: everything the loop adds to the session — theory blocking
    /// clauses, learned lemmas, CDCL-learned clauses — is implied by the
    /// encoded problem alone, never by the assumptions.
    pub(crate) fn solve_session(
        &mut self,
        session: &mut EncodedSession,
        problem: &Encoded,
        assumptions: &[Lit],
    ) -> SmtResult {
        let warm_before = session
            .lia
            .as_ref()
            .map(|l| (l.warm_checks(), l.pivots_saved()));
        let result = self.solve_session_inner(session, problem, assumptions);
        if let (Some(inc), Some((w0, p0))) = (&session.lia, warm_before) {
            self.stats.tableau_warm_starts += (inc.warm_checks() - w0) as usize;
            self.stats.lia_pivots_saved += (inc.pivots_saved() - p0) as usize;
        }
        result
    }

    fn solve_session_inner(
        &mut self,
        session: &mut EncodedSession,
        problem: &Encoded,
        assumptions: &[Lit],
    ) -> SmtResult {
        self.interrupted = false;
        for _ in 0..self.max_iterations {
            if self.interrupt_requested() {
                self.interrupted = true;
                return SmtResult::Unknown;
            }
            self.stats.sat_calls += 1;
            let model = {
                let _sat_span = synquid_telemetry::span(Phase::Sat);
                match session.sat.solve_with_assumptions(assumptions) {
                    SatResult::Unsat(_) => return SmtResult::Unsat,
                    SatResult::Sat(model) => model,
                }
            };
            // Collect the arithmetic literals implied by the boolean model.
            let mut literals: Vec<(usize, bool, crate::lia::Constraint)> = Vec::new();
            for (idx, atom) in problem.atoms.iter().enumerate() {
                let value = model.get(idx).copied().unwrap_or(false);
                if let TheoryAtom::Compare(_, _, _) = atom {
                    if let Some(c) = problem.atom_constraint(idx, value) {
                        literals.push((idx, value, c));
                    }
                }
            }
            self.stats.theory_calls += 1;
            let constraints: Vec<_> = literals.iter().map(|(_, _, c)| c.clone()).collect();
            let verdict = {
                // The `Lia` phase counts only these first checks of the
                // DPLL(T) loop; theory checks issued while shrinking a
                // conflict are attributed to `CoreShrink` below.
                let _lia_span = synquid_telemetry::span(Phase::Lia);
                self.theory_check(session, problem.num_arith_vars, &constraints)
            };
            match verdict {
                LiaResult::Sat(_) => return SmtResult::Sat,
                LiaResult::Unknown => {
                    // A branch-budget `Unknown` is a deterministic verdict
                    // and may be cached; one caused by the deadline
                    // reflects the budget and must not be (the warm
                    // tableau poisons itself on deadline truncation).
                    if self.interrupt_requested() {
                        self.interrupted = true;
                    }
                    return SmtResult::Unknown;
                }
                LiaResult::Unsat => {
                    if literals.is_empty() {
                        return SmtResult::Unsat;
                    }
                    // Shrink the conflicting literal set to a small core by
                    // chunked deletion so the blocking clause prunes many
                    // boolean models at once. Whole blocks are dropped
                    // first, halving the block size on failure, so a core
                    // of size k hiding in n literals costs O(k log n)
                    // theory checks instead of the O(n) of one-at-a-time
                    // deletion — on measure-heavy synthesis queries the
                    // conflict sets run to dozens of literals, and this
                    // shrink loop dominates query time. Every shrink check
                    // runs against the same warm tableau.
                    // The whole shrink (including its theory checks) is
                    // one `CoreShrink` span — matching how solver cost
                    // was profiled by hand before this instrumentation.
                    let _shrink_span = synquid_telemetry::span(Phase::CoreShrink);
                    let mut core = literals;
                    let mut block = core.len().div_ceil(2);
                    loop {
                        if self.interrupt_requested() {
                            self.interrupted = true;
                            return SmtResult::Unknown;
                        }
                        let mut i = 0;
                        while i < core.len() {
                            // Each pass issues up to `core.len()` LIA
                            // checks; poll between them, not just per
                            // pass, so the budget overshoot stays
                            // bounded by one check.
                            if self.interrupt_requested() {
                                self.interrupted = true;
                                return SmtResult::Unknown;
                            }
                            let end = (i + block).min(core.len());
                            let mut candidate = core.clone();
                            candidate.drain(i..end);
                            let cs: Vec<_> = candidate.iter().map(|(_, _, c)| c.clone()).collect();
                            self.stats.theory_calls += 1;
                            if matches!(
                                self.theory_check(session, problem.num_arith_vars, &cs),
                                LiaResult::Unsat
                            ) {
                                core = candidate;
                            } else {
                                i = end;
                            }
                        }
                        if block == 1 {
                            break;
                        }
                        block = block.div_ceil(2);
                    }
                    // Persist the shrunk conflict for later queries: the
                    // core's atoms at these polarities are jointly
                    // LIA-inconsistent whatever boolean skeleton
                    // surrounds them.
                    if let Some(store) = &mut self.lemmas {
                        let lemma: Option<Vec<(String, bool)>> = core
                            .iter()
                            .map(|(idx, value, _)| {
                                session
                                    .atom_keys
                                    .get(*idx)
                                    .and_then(|k| k.clone())
                                    .map(|k| (k, *value))
                            })
                            .collect();
                        if let Some(mut lemma) = lemma {
                            lemma.sort();
                            if !lemma.is_empty() && store.insert(lemma.clone()) {
                                self.stats.conflicts_learned += 1;
                                events::emit(|| {
                                    Event::new("lemma_learn").uint("size", core.len() as u64)
                                });
                                // Publish for future runs of the owning
                                // session (this run keeps replaying from
                                // its private store and frozen seed).
                                if let Some(sink) = &self.lemma_sink {
                                    sink.absorb(lemma);
                                }
                            }
                        }
                    }
                    let blocking: Vec<Lit> = core
                        .iter()
                        .map(|(idx, value, _)| Lit::new(*idx, !*value))
                        .collect();
                    if blocking.is_empty() {
                        return SmtResult::Unsat;
                    }
                    session.sat.add_clause(blocking);
                }
            }
        }
        SmtResult::Unknown
    }

    /// Bumps the shared-MUS-encoding counter (called by the enumerator
    /// once per enumeration that builds a shared session).
    pub(crate) fn note_mus_shared_encoding(&mut self) {
        self.stats.mus_shared_encodings += 1;
    }
}

/// A reusable DPLL(T) session over one encoded problem: the loaded SAT
/// solver, the warm LIA tableau (when the incremental path is on), and
/// the portable atom keys for lemma persistence. Created by
/// [`Smt::begin_session`], solved (repeatedly, under varying assumption
/// sets) by [`Smt::solve_session`].
#[derive(Debug)]
pub(crate) struct EncodedSession {
    sat: SatSolver,
    /// `Some` = warm tableau shared by every theory check of the session;
    /// `None` = from-scratch per check (the ablation baseline).
    lia: Option<IncrementalLia>,
    atom_keys: Vec<Option<String>>,
}

impl EncodedSession {
    /// Registers a skeleton as *selectable*: returns a selector literal
    /// that, when assumed true, enforces the skeleton (one-sided — the
    /// selector left free or false enforces nothing). This is how the MUS
    /// enumerator activates soft-constraint subsets against one shared
    /// encoding instead of re-encoding each subset.
    pub(crate) fn add_selectable(&mut self, skeleton: &Skeleton) -> Lit {
        let selector = self.sat.new_var();
        let lit = Tseitin { sat: &mut self.sat }.literal_for(skeleton);
        self.sat.add_clause(vec![Lit::neg(selector), lit]);
        Lit::pos(selector)
    }
}

/// A comparison atom normalized to a one-sided bound over a canonical
/// linear combination: `combo ≤ bound` when `upper`, `combo ≥ bound`
/// otherwise, strict or not. The combination is sign- and
/// scale-canonicalized (leading coefficient 1), so `x - y ≤ 0`,
/// `y ≥ x`, and `2x - 2y < 4` all land in the same group and become
/// propositionally comparable by bound alone.
#[derive(Debug, Clone, Copy)]
struct NormAtom {
    idx: usize,
    upper: bool,
    strict: bool,
    bound: Rational,
}

/// Normalizes one comparison atom; `None` for non-comparisons and for
/// ground (variable-free) comparisons, which the encoder already folds.
fn normalize_atom(
    idx: usize,
    op: synquid_logic::BinOp,
    lhs: &crate::lia::LinExpr,
    rhs: &crate::lia::LinExpr,
) -> Option<(Vec<(crate::lia::VarId, Rational)>, NormAtom)> {
    use synquid_logic::BinOp;
    let diff = lhs.minus(rhs);
    let (mut upper, strict) = match op {
        BinOp::Le => (true, false),
        BinOp::Lt => (true, true),
        BinOp::Ge => (false, false),
        BinOp::Gt => (false, true),
        _ => return None,
    };
    // `diff ⋈ 0` is `Σ cᵢxᵢ ⋈ -k`. Dividing by the leading coefficient
    // makes it 1; a negative leading coefficient flips the direction.
    let lead = *diff.coeffs.values().next()?;
    let scale = lead.recip();
    if lead.is_negative() {
        upper = !upper;
    }
    let combo: Vec<(crate::lia::VarId, Rational)> =
        diff.coeffs.iter().map(|(v, c)| (*v, *c * scale)).collect();
    let bound = -diff.constant * scale;
    Some((
        combo,
        NormAtom {
            idx,
            upper,
            strict,
            bound,
        },
    ))
}

/// True when normalized atom `a` implies normalized atom `b`, both bounds
/// in the *same* direction over the same combination: a tighter (or
/// equally tight, no-weaker-strictness) bound implies a looser one. The
/// rule is valid over the rationals, hence also over the integers.
fn bound_implies(a: &NormAtom, b: &NormAtom) -> bool {
    let tighter = if a.upper {
        a.bound < b.bound
    } else {
        a.bound > b.bound
    };
    tighter || (a.bound == b.bound && (a.strict || !b.strict))
}

/// Above this many atoms over one linear combination, only same-bound
/// pairs are related, keeping the axiom count from going quadratic on
/// pathological queries. Synthesis queries stay far below this.
const MAX_CROSS_BOUND_GROUP: usize = 64;

/// Propositional bound-implication lemmas between comparison atoms over
/// the same canonical linear combination — the theory-propagation layer.
/// Subsumes the old same-difference total-order axioms (complementary,
/// equivalent, strict→non-strict, totality, exclusivity pairs) and adds
/// *cross-constant* propagation: once the SAT trail fixes `x ≤ 3`, unit
/// propagation immediately derives `x ≤ 5`, `¬(x ≥ 4)`, … without a
/// theory call. Returns the clauses plus the number of cross-constant
/// clauses (the `bounds_propagated` statistic).
fn bound_axioms(problem: &Encoded) -> (Vec<Vec<Lit>>, usize) {
    let mut groups: std::collections::BTreeMap<Vec<(crate::lia::VarId, Rational)>, Vec<NormAtom>> =
        std::collections::BTreeMap::new();
    for (idx, atom) in problem.atoms.iter().enumerate() {
        if let TheoryAtom::Compare(op, lhs, rhs) = atom {
            if let Some((combo, norm)) = normalize_atom(idx, *op, lhs, rhs) {
                groups.entry(combo).or_default().push(norm);
            }
        }
    }
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut cross_bound = 0usize;
    let pos = |n: &NormAtom| Lit::new(n.idx, true);
    let neg = |n: &NormAtom| Lit::new(n.idx, false);
    for group in groups.values() {
        let same_bound_only = group.len() > MAX_CROSS_BOUND_GROUP;
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                let (a, b) = (&group[i], &group[j]);
                let cross = a.bound != b.bound;
                if cross && same_bound_only {
                    continue;
                }
                let before = clauses.len();
                if a.upper == b.upper {
                    // Same direction: tighter bound implies looser bound.
                    if bound_implies(a, b) {
                        clauses.push(vec![neg(a), pos(b)]);
                    }
                    if bound_implies(b, a) {
                        clauses.push(vec![neg(b), pos(a)]);
                    }
                } else {
                    let (u, l) = if a.upper { (a, b) } else { (b, a) };
                    // Exclusivity: `combo ≤ b_u` and `combo ≥ b_l` cannot
                    // both hold when the window [b_l, b_u] is empty.
                    if l.bound > u.bound || (l.bound == u.bound && (u.strict || l.strict)) {
                        clauses.push(vec![neg(u), neg(l)]);
                    }
                    // Totality: one of them must hold when together they
                    // cover the whole line (¬upper ⟹ lower).
                    if u.bound > l.bound || (u.bound == l.bound && (!u.strict || !l.strict)) {
                        clauses.push(vec![pos(u), pos(l)]);
                    }
                }
                if cross {
                    cross_bound += clauses.len() - before;
                }
            }
        }
    }
    (clauses, cross_bound)
}

/// Tseitin-style CNF conversion of skeletons into the SAT solver.
///
/// Theory atoms keep their index as SAT variable; internal `And`/`Or`
/// nodes receive fresh auxiliary variables. Since skeletons are in
/// negation normal form, one-sided (Plaisted–Greenbaum) encoding is
/// sufficient.
struct Tseitin<'a> {
    sat: &'a mut SatSolver,
}

impl<'a> Tseitin<'a> {
    fn assert_root(&mut self, s: &Skeleton) {
        match s {
            Skeleton::True => {}
            Skeleton::False => self.sat.add_clause(vec![]),
            Skeleton::Lit(a, p) => self.sat.add_clause(vec![Lit::new(*a, *p)]),
            Skeleton::And(items) => {
                for i in items {
                    self.assert_root(i);
                }
            }
            Skeleton::Or(items) => {
                let lits: Vec<Lit> = items.iter().map(|i| self.literal_for(i)).collect();
                self.sat.add_clause(lits);
            }
        }
    }

    /// Returns a literal equivalent (one-sided) to the sub-skeleton.
    fn literal_for(&mut self, s: &Skeleton) -> Lit {
        match s {
            Skeleton::True => {
                let v = self.sat.new_var();
                self.sat.add_clause(vec![Lit::pos(v)]);
                Lit::pos(v)
            }
            Skeleton::False => {
                let v = self.sat.new_var();
                self.sat.add_clause(vec![Lit::neg(v)]);
                Lit::pos(v)
            }
            Skeleton::Lit(a, p) => Lit::new(*a, *p),
            Skeleton::And(items) => {
                let v = self.sat.new_var();
                let lv = Lit::pos(v);
                for i in items {
                    let li = self.literal_for(i);
                    // v -> li
                    self.sat.add_clause(vec![lv.negate(), li]);
                }
                lv
            }
            Skeleton::Or(items) => {
                let v = self.sat.new_var();
                let lv = Lit::pos(v);
                let mut clause = vec![lv.negate()];
                for i in items {
                    clause.push(self.literal_for(i));
                }
                // v -> (l1 ∨ ... ∨ ln)
                self.sat.add_clause(clause);
                lv
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::{Sort, Term};

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }
    fn y() -> Term {
        Term::var("y", Sort::Int)
    }
    fn n() -> Term {
        Term::var("n", Sort::Int)
    }

    #[test]
    fn tautologies_are_valid() {
        let mut smt = Smt::new();
        assert!(smt.is_valid(&Term::tt()));
        assert!(smt.is_valid(&x().le(y()).or(x().gt(y()))));
        assert!(smt.is_valid(&x().eq(x())));
        assert!(!smt.is_valid(&x().le(y())));
    }

    #[test]
    fn linear_arithmetic_entailment() {
        let mut smt = Smt::new();
        // 0 <= n ∧ n <= 0  ⇒  n == 0
        let premise = Term::int(0).le(n()).and(n().le(Term::int(0)));
        assert!(smt.entails(&premise, &n().eq(Term::int(0))));
        assert!(!smt.entails(&premise, &n().eq(Term::int(1))));
    }

    #[test]
    fn replicate_nil_branch_vc() {
        // 0 <= n ∧ n <= 0 ∧ len ν = 0  ⇒  len ν = n
        let list = Sort::data("List", vec![Sort::var("a")]);
        let len_v = Term::app("len", vec![Term::value_var(list)], Sort::Int);
        let mut smt = Smt::new();
        let premise = Term::int(0)
            .le(n())
            .and(n().le(Term::int(0)))
            .and(len_v.clone().eq(Term::int(0)));
        assert!(smt.entails(&premise, &len_v.clone().eq(n())));
        // Without the branch condition n <= 0 the entailment fails.
        let premise_weak = Term::int(0).le(n()).and(len_v.clone().eq(Term::int(0)));
        assert!(!smt.entails(&premise_weak, &len_v.eq(n())));
    }

    #[test]
    fn set_reasoning_union_singleton() {
        // keys ν = keys t + [x]  ⇒  keys t <= keys ν  (subset)
        let elem = Sort::var("a");
        let keys_v = Term::var("kv", Sort::set(elem.clone()));
        let keys_t = Term::var("kt", Sort::set(elem.clone()));
        let xvar = Term::var("x", elem.clone());
        let premise = keys_v.clone().eq(keys_t
            .clone()
            .union(Term::singleton(elem.clone(), xvar.clone())));
        let mut smt = Smt::new();
        assert!(smt.entails(&premise, &keys_t.clone().subset(keys_v.clone())));
        assert!(smt.entails(&premise, &xvar.clone().member(keys_v.clone())));
        // But not the converse subset (ν may contain x which t lacks) —
        // indeed keys ν ⊆ keys t is not entailed.
        assert!(!smt.entails(&premise, &keys_v.subset(keys_t)));
    }

    #[test]
    fn set_equality_is_reflexive_and_compositional() {
        let elem = Sort::Int;
        let s1 = Term::var("s1", Sort::set(elem.clone()));
        let s2 = Term::var("s2", Sort::set(elem.clone()));
        let s3 = Term::var("s3", Sort::set(elem.clone()));
        let mut smt = Smt::new();
        // s1 = s2 ∧ s2 = s3 ⇒ s1 = s3 (needs witnesses to flow through
        // positive equalities).
        let premise = s1.clone().eq(s2.clone()).and(s2.clone().eq(s3.clone()));
        assert!(smt.entails(&premise, &s1.clone().eq(s3.clone())));
        assert!(!smt.entails(&premise, &s1.clone().eq(Term::empty_set(elem))));
        // Union is commutative.
        let u12 = s1.clone().union(s2.clone());
        let u21 = s2.clone().union(s1.clone());
        assert!(smt.is_valid(&u12.eq(u21)));
    }

    #[test]
    fn uninterpreted_functions_respect_congruence() {
        let a = Term::var("a", Sort::Int);
        let b = Term::var("b", Sort::Int);
        let fa = Term::app("f", vec![a.clone()], Sort::Int);
        let fb = Term::app("f", vec![b.clone()], Sort::Int);
        let mut smt = Smt::new();
        assert!(smt.entails(&a.clone().eq(b.clone()), &fa.clone().eq(fb.clone())));
        assert!(!smt.entails(&a.le(b), &fa.eq(fb)));
    }

    #[test]
    fn boolean_structure_with_ite() {
        let mut smt = Smt::new();
        let t = Term::ite(x().le(y()), x(), y()).le(x());
        // min(x, y) <= x is valid.
        assert!(smt.is_valid(&t));
        let t = Term::ite(x().le(y()), x(), y()).ge(x());
        assert!(!smt.is_valid(&t));
    }

    #[test]
    fn entailment_with_measures_and_arithmetic() {
        // len xs = 2 ∧ len r >= 0 ∧ len ν = len xs + len r ⇒ len ν >= 2
        let list = Sort::data("List", vec![Sort::Int]);
        let len = |t: Term| Term::app("len", vec![t], Sort::Int);
        let xs = Term::var("xs", list.clone());
        let r = Term::var("r", list.clone());
        let v = Term::value_var(list);
        let premise = len(xs.clone())
            .eq(Term::int(2))
            .and(len(r.clone()).ge(Term::int(0)))
            .and(len(v.clone()).eq(len(xs).plus(len(r))));
        let mut smt = Smt::new();
        assert!(smt.entails(&premise, &len(v.clone()).ge(Term::int(2))));
        assert!(!smt.entails(&premise, &len(v).eq(Term::int(2))));
    }

    #[test]
    fn unsat_conjunction_detected() {
        let mut smt = Smt::new();
        let c = x().lt(y()).and(y().lt(x()));
        assert_eq!(smt.check_sat(&c), SmtResult::Unsat);
        let c = x().lt(y()).and(y().lt(x().plus(Term::int(2))));
        assert_eq!(smt.check_sat(&c), SmtResult::Sat);
    }

    #[test]
    fn shared_cache_is_reused_across_instances() {
        let cache = SharedValidityCache::new();
        let mut first = Smt::with_cache(cache.clone());
        assert!(first.entails(&x().lt(y()), &x().le(y())));
        assert_eq!(first.stats().shared_hits, 0);
        assert_eq!(first.stats().shared_misses, 1);
        // A second instance (as used by a sibling worker thread) answers
        // the same entailment from the shared table without solving.
        let mut second = Smt::with_cache(cache.clone());
        let sat_calls_before = second.stats().sat_calls;
        assert!(second.entails(&x().lt(y()), &x().le(y())));
        assert_eq!(second.stats().sat_calls, sat_calls_before);
        assert_eq!(second.stats().shared_hits, 1);
        assert_eq!(second.stats().shared_negative_hits, 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert!(stats.entries >= 1);
    }

    #[test]
    fn shared_cache_caches_positive_results_too() {
        let cache = SharedValidityCache::new();
        let mut first = Smt::with_cache(cache.clone());
        assert!(!first.entails(&x().le(y()), &x().eq(y())));
        let mut second = Smt::with_cache(cache.clone());
        assert!(!second.entails(&x().le(y()), &x().eq(y())));
        assert_eq!(second.stats().shared_hits, 1);
        assert_eq!(second.stats().shared_negative_hits, 0);
    }

    #[test]
    fn stats_are_accumulated() {
        let mut smt = Smt::new();
        let _ = smt.check_sat(&x().le(y()));
        let _ = smt.check_sat(&x().gt(y()));
        assert_eq!(smt.stats().queries, 2);
        assert!(smt.stats().sat_calls >= 2);
    }
}
