//! Exact rational arithmetic for the simplex core.
//!
//! Rationals are stored as reduced `i128` fractions with a positive
//! denominator. The linear programs arising from refinement-type
//! verification conditions are tiny, so `i128` precision is ample; all
//! operations use checked arithmetic and panic on overflow rather than
//! silently producing wrong answers.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates an integral rational.
    pub fn from_int(n: i64) -> Rational {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// The numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True if this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Largest integer less than or equal to this rational.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer greater than or equal to this rational.
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the rational is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(
            self.num
                .checked_mul(rhs.den)
                .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
                .expect("rational overflow in add"),
            self.den.checked_mul(rhs.den).expect("rational overflow"),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(
            self.num
                .checked_mul(rhs.num)
                .expect("rational overflow in mul"),
            self.den
                .checked_mul(rhs.den)
                .expect("rational overflow in mul"),
        )
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational overflow in cmp");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational overflow in cmp");
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_reduces_fractions() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
    }

    #[test]
    fn ordering_is_consistent() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::from_int(2) > Rational::new(3, 2));
    }

    #[test]
    fn floor_and_ceil_handle_negatives() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
