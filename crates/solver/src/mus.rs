//! Enumeration of minimal unsatisfiable subsets (MUSes).
//!
//! This is the engine behind MUSFIX (Sec. 3.6 of the paper): the
//! `Strengthen` step of the greatest-fixpoint Horn solver needs, for each
//! violated Horn constraint, all *minimal* subsets of candidate qualifier
//! atoms whose addition makes the constraint valid. That task reduces to
//! enumerating the MUSes of a constraint set that contain the negated
//! right-hand side of the implication.
//!
//! The implementation follows the MARCO algorithm (Liffiton et al.,
//! "Fast, flexible MUS enumeration"): a *map* SAT instance over subset
//! selector variables steers exploration; unsatisfiable seeds are shrunk
//! to MUSes (blocking all supersets), satisfiable seeds are grown to MSSes
//! (blocking all subsets).

use crate::encode::{Encoder, Skeleton};
use crate::sat::{Lit, SatResult, SatSolver};
use crate::smt::{Smt, SmtResult};
use std::collections::BTreeSet;
use synquid_logic::Term;

/// Budgets for MUS enumeration.
#[derive(Debug, Clone, Copy)]
pub struct MusConfig {
    /// Maximum number of MUSes to report.
    pub max_muses: usize,
    /// Maximum number of subset satisfiability checks.
    pub max_checks: usize,
}

impl Default for MusConfig {
    fn default() -> Self {
        MusConfig {
            max_muses: 4,
            max_checks: 400,
        }
    }
}

/// Enumerates minimal unsatisfiable subsets of `0..n` using the provided
/// oracle. Every reported subset is a superset of `required`; elements of
/// `required` are never candidates for removal during shrinking.
///
/// The `is_unsat` oracle receives a candidate subset (always including
/// `required`) and must return `true` iff that subset is unsatisfiable
/// (together with whatever fixed background the caller has in mind).
pub fn enumerate_mus(
    n: usize,
    required: &BTreeSet<usize>,
    config: MusConfig,
    mut is_unsat: impl FnMut(&BTreeSet<usize>) -> bool,
) -> Vec<BTreeSet<usize>> {
    let mut muses: Vec<BTreeSet<usize>> = Vec::new();
    let mut checks = 0usize;
    let mut map = SatSolver::new();
    map.reserve_vars(n);
    for &r in required {
        map.add_clause(vec![Lit::pos(r)]);
    }

    loop {
        if muses.len() >= config.max_muses || checks >= config.max_checks {
            break;
        }
        // Find an unexplored seed.
        let model = match map.solve() {
            SatResult::Unsat(_) => break,
            SatResult::Sat(model) => model,
        };
        let mut seed: BTreeSet<usize> = (0..n)
            .filter(|i| model.get(*i).copied().unwrap_or(false))
            .collect();
        seed.extend(required.iter().copied());

        // Grow the seed towards a maximal set first: MARCO works correctly
        // with any seed, but maximal seeds find MUSes faster for our
        // workloads because most candidate atoms are irrelevant.
        checks += 1;
        if !is_unsat(&seed) {
            // Satisfiable: grow to an MSS, then block down.
            let mut mss = seed.clone();
            for i in 0..n {
                if mss.contains(&i) {
                    continue;
                }
                let mut candidate = mss.clone();
                candidate.insert(i);
                checks += 1;
                if checks >= config.max_checks {
                    break;
                }
                if !is_unsat(&candidate) {
                    mss = candidate;
                }
            }
            // Block down: require at least one element outside the MSS.
            let clause: Vec<Lit> = (0..n).filter(|i| !mss.contains(i)).map(Lit::pos).collect();
            if clause.is_empty() {
                // The full set is satisfiable: no MUS exists above it.
                break;
            }
            map.add_clause(clause);
        } else {
            // Unsatisfiable: shrink to a MUS, then block up.
            let mut mus = seed.clone();
            let shrink_candidates: Vec<usize> = mus
                .iter()
                .copied()
                .filter(|i| !required.contains(i))
                .collect();
            for i in shrink_candidates {
                let mut candidate = mus.clone();
                candidate.remove(&i);
                checks += 1;
                if checks >= config.max_checks {
                    break;
                }
                if is_unsat(&candidate) {
                    mus = candidate;
                }
            }
            // Block up: at least one element of the MUS must be absent.
            let clause: Vec<Lit> = mus
                .iter()
                .copied()
                .filter(|i| !required.contains(i))
                .map(Lit::neg)
                .collect();
            if clause.is_empty() {
                // The required set alone is unsatisfiable; it is the unique
                // MUS containing the required elements.
                muses.push(mus);
                break;
            }
            map.add_clause(clause);
            muses.push(mus);
        }
    }
    muses
}

/// Enumerates the MUSes of `background ∧ soft` that contain all `required`
/// soft constraints, using the SMT solver as the oracle.
///
/// The whole constraint set is encoded *once* against one shared encoder
/// (atoms, arithmetic variables, purified applications, and the
/// set-elimination universe — seeded from the full conjunction, which is
/// sound because a larger universe only sharpens the finite-model
/// abstraction). Each soft constraint gets a selector literal; a subset
/// check is then a single assumption-based call into the shared DPLL(T)
/// session, reusing its SAT clause database, learned theory conflicts,
/// and warm simplex tableau across all subsets — instead of re-encoding
/// and re-solving every subset from scratch.
///
/// Enumerations are memoized in the solver's incremental state: the
/// liquid-abduction loop poses the *same* strengthening problem for every
/// candidate that shares a VC skeleton, and the result is a pure function
/// of `(background, soft, required, budgets)`. An enumeration whose
/// oracle was interrupted by the solver's deadline is never memoized —
/// its result reflects the budget, not the problem.
pub fn enumerate_mus_smt(
    smt: &mut Smt,
    background: &Term,
    soft: &[Term],
    required: &BTreeSet<usize>,
    config: MusConfig,
) -> Vec<BTreeSet<usize>> {
    let key = crate::smt::MusMemoKey {
        background: background.clone(),
        soft: soft.to_vec(),
        required: required.iter().copied().collect(),
        max_muses: config.max_muses,
        max_checks: config.max_checks,
    };
    if let Some(cached) = smt.mus_memo_lookup(&key) {
        synquid_telemetry::events::emit(|| {
            synquid_telemetry::events::Event::new("cache_hit").str("layer", "mus-memo")
        });
        return cached;
    }
    // Attributed to the same phase as the solver's unsat-core shrinking:
    // both are "minimize the reason for UNSAT" work. Oracle sub-queries
    // open their own spans, so self-time attribution keeps the totals
    // additive.
    let _span = synquid_telemetry::span(synquid_telemetry::Phase::CoreShrink);
    // Shared encoding: background is asserted unconditionally, each soft
    // constraint hangs off a selector literal assumed per subset.
    let (problem, soft_skeletons) = {
        let _encode_span = synquid_telemetry::span(synquid_telemetry::Phase::Encode);
        let mut encoder = Encoder::new();
        let full = Term::conjunction(std::iter::once(background).chain(soft.iter()).cloned());
        encoder.seed_universe(&full);
        let background_skeleton = encoder.encode(background);
        let soft_skeletons: Vec<Skeleton> = soft.iter().map(|t| encoder.encode(t)).collect();
        (encoder.finish(background_skeleton), soft_skeletons)
    };
    let mut session = smt.begin_session(&problem, &[]);
    let selectors: Vec<_> = soft_skeletons
        .iter()
        .map(|s| session.add_selectable(s))
        .collect();
    smt.note_mus_shared_encoding();
    let mut interrupted = false;
    let muses = enumerate_mus(soft.len(), required, config, |subset| {
        let assumptions: Vec<_> = subset.iter().map(|i| selectors[*i]).collect();
        let verdict = smt.solve_session(&mut session, &problem, &assumptions);
        interrupted |= smt.last_query_interrupted();
        matches!(verdict, SmtResult::Unsat)
    });
    if !interrupted {
        smt.mus_memo_insert(key, muses.clone());
    }
    muses
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::{Sort, Term};

    fn set(items: &[usize]) -> BTreeSet<usize> {
        items.iter().copied().collect()
    }

    #[test]
    fn enumerates_all_muses_of_a_boolean_oracle() {
        // Constraints: 0:"x>0", 1:"x<0", 2:"x=5", 3:"true".
        // MUSes: {0,1}, {1,2}.
        let is_unsat = |s: &BTreeSet<usize>| {
            (s.contains(&0) && s.contains(&1)) || (s.contains(&1) && s.contains(&2))
        };
        let muses = enumerate_mus(4, &BTreeSet::new(), MusConfig::default(), is_unsat);
        assert_eq!(muses.len(), 2);
        assert!(muses.contains(&set(&[0, 1])));
        assert!(muses.contains(&set(&[1, 2])));
    }

    #[test]
    fn required_elements_are_in_every_mus() {
        // Same oracle, but require element 2: only {1,2} qualifies.
        let is_unsat = |s: &BTreeSet<usize>| {
            (s.contains(&0) && s.contains(&1)) || (s.contains(&1) && s.contains(&2))
        };
        let muses = enumerate_mus(4, &set(&[2]), MusConfig::default(), is_unsat);
        assert_eq!(muses, vec![set(&[1, 2])]);
    }

    #[test]
    fn no_mus_when_everything_satisfiable() {
        let muses = enumerate_mus(5, &BTreeSet::new(), MusConfig::default(), |_| false);
        assert!(muses.is_empty());
    }

    #[test]
    fn required_set_alone_unsat_is_the_unique_mus() {
        let muses = enumerate_mus(3, &set(&[1]), MusConfig::default(), |s| s.contains(&1));
        assert_eq!(muses, vec![set(&[1])]);
    }

    #[test]
    fn smt_backed_enumeration_finds_branch_condition() {
        // Background: len ν = 0 ∧ ¬(len ν = n) ∧ 0 ≤ n   (the replicate
        // Nil-branch VC with the conclusion negated).
        // Soft candidates: {n ≤ 0, n ≠ 0, 0 ≤ n}.
        // The only MUS containing the (already unsat-making) candidate
        // n ≤ 0 is {n ≤ 0} itself: adding it makes the background unsat.
        let list = Sort::data("List", vec![Sort::var("a")]);
        let len_v = Term::app("len", vec![Term::value_var(list)], Sort::Int);
        let n = Term::var("n", Sort::Int);
        let background = len_v
            .clone()
            .eq(Term::int(0))
            .and(len_v.eq(n.clone()).not())
            .and(Term::int(0).le(n.clone()));
        let soft = vec![
            n.clone().le(Term::int(0)),
            n.clone().neq(Term::int(0)),
            Term::int(0).le(n.clone()),
        ];
        let mut smt = Smt::new();
        let muses = enumerate_mus_smt(
            &mut smt,
            &background,
            &soft,
            &BTreeSet::new(),
            MusConfig::default(),
        );
        assert!(
            muses.contains(&set(&[0])),
            "expected {{n ≤ 0}} to be a MUS, got {muses:?}"
        );
        // {n ≠ 0, 0 ≤ n} also implies n > 0, contradicting len ν = 0 = n?
        // No: background already negates len ν = n, so n ≠ 0 does not help.
        assert!(!muses.contains(&set(&[1])));
    }

    #[test]
    fn shared_encoding_links_soft_disequality_witness_to_background() {
        // The list_delete Cons-branch strengthening problem, reduced.
        // Background (the recursive-call environment):
        //   elems xs = elems xs1 ∪ [x0]  ∧  elems ν = elems xs1 \ [x0]
        // Softs: {x ≤ x0, x0 ≤ x, ¬(elems ν = elems xs \ [x])}.
        // Under x = x0 the negated conclusion is unsatisfiable, so
        // {0, 1, 2} is a MUS. Finding it requires the background set
        // equalities to be instantiated at the *soft* constraint's
        // disequality witness — exactly what the encoder's witness pool
        // guarantees for shared (selector-based) MUS encodings. With
        // per-call fresh witnesses this enumeration comes back empty and
        // list_delete stops synthesizing.
        let elem = Sort::var("a");
        let list = Sort::data("List", vec![elem.clone()]);
        let elems = |t: Term| Term::app("elems", vec![t], Sort::set(Sort::var("a")));
        let single = |name: &str| Term::singleton(elem.clone(), Term::var(name, elem.clone()));
        let xs = Term::var("xs", list.clone());
        let xs1 = Term::var("xs1", list.clone());
        let nu = Term::value_var(list);
        let x = Term::var("x", elem.clone());
        let x0 = Term::var("x0", elem.clone());
        let background = elems(xs.clone())
            .eq(elems(xs1.clone()).union(single("x0")))
            .and(elems(nu.clone()).eq(elems(xs1).set_diff(single("x0"))));
        let soft = vec![
            x.clone().le(x0.clone()),
            x0.le(x),
            elems(nu).eq(elems(xs).set_diff(single("x"))).not(),
        ];
        let mut smt = Smt::new();
        let muses = enumerate_mus_smt(
            &mut smt,
            &background,
            &soft,
            &set(&[2]),
            MusConfig::default(),
        );
        assert!(
            muses.contains(&set(&[0, 1, 2])),
            "expected {{x ≤ x0, x0 ≤ x, ¬conclusion}} to be a MUS, got {muses:?}"
        );
    }
}
