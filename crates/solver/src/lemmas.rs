//! Session-resident persistence of learned theory conflicts.
//!
//! Each [`Smt`](crate::Smt) instance learns theory conflicts while it
//! solves and keeps them in a private store for the duration of one
//! synthesis run (see the incremental DPLL(T) machinery in
//! [`crate::smt`]). A lemma is a set of portable atom keys taken at
//! truth values that are jointly LIA-inconsistent — a fact about the
//! formulas themselves, valid in *any* query in which all of its atoms
//! appear. That makes lemmas safe to outlive the run that learned them:
//! [`SharedLemmaStore`] is the resident pool a session keeps across
//! runs.
//!
//! Determinism is preserved by a freeze-then-flush protocol: at the
//! start of a batch run the engine takes one immutable
//! [`LemmaSeed`] snapshot, every solver of that run replays from the
//! same seed (so results cannot depend on worker scheduling), and
//! lemmas learned during the run flow back into the store for *future*
//! runs only. Dropping lemmas is always sound — each one is implied by
//! the encoding of any query containing its atoms — so the store is
//! size-bounded and epoch-GC'd like every other resident cache:
//! a lemma absorbed or replayed this epoch survives, two cold epochs
//! evicts.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// One persisted lemma: portable `(atom key, truth value)` literals,
/// sorted by key. Asserting the negation of the conjunction is sound in
/// any query whose atom set covers the keys.
pub type Lemma = Vec<(String, bool)>;

/// Counters exposed by [`SharedLemmaStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LemmaStoreStats {
    /// Lemmas currently resident.
    pub resident: usize,
    /// Lemmas ever absorbed (monotone; duplicates not counted).
    pub absorbed: usize,
    /// Lemmas dropped by epoch GC or the size bound (monotone).
    pub evicted: usize,
    /// GC epochs advanced since the store was created.
    pub epoch: usize,
}

#[derive(Debug, Default)]
struct StoreInner {
    /// Lemma → epoch last absorbed or replayed.
    lemmas: BTreeMap<Lemma, u32>,
    epoch: u32,
    absorbed: usize,
    evicted: usize,
    max_lemmas: usize,
}

/// A cloneable handle to the resident lemma pool of one session cache
/// namespace. Writers (solvers absorbing fresh conflicts, replays
/// touching seeded lemmas) take a short mutex; readers take immutable
/// [`LemmaSeed`] snapshots at run boundaries and never lock on the
/// solving hot path.
#[derive(Debug, Clone)]
pub struct SharedLemmaStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl Default for SharedLemmaStore {
    fn default() -> SharedLemmaStore {
        SharedLemmaStore::new()
    }
}

impl SharedLemmaStore {
    /// Default bound, matching the per-run store of the solver.
    pub const DEFAULT_MAX_LEMMAS: usize = 8_192;

    /// Creates an empty store with the default bound.
    pub fn new() -> SharedLemmaStore {
        SharedLemmaStore::with_max_lemmas(Self::DEFAULT_MAX_LEMMAS)
    }

    /// Creates an empty store bounded to `max_lemmas` (at least 1).
    pub fn with_max_lemmas(max_lemmas: usize) -> SharedLemmaStore {
        SharedLemmaStore {
            inner: Arc::new(Mutex::new(StoreInner {
                max_lemmas: max_lemmas.max(1),
                ..StoreInner::default()
            })),
        }
    }

    /// Absorbs one freshly learned lemma (already sorted by key).
    /// Duplicates refresh the existing entry's epoch; at the bound, new
    /// lemmas are dropped (re-learning them later is sound and cheap
    /// relative to the conflict analysis that produced them).
    pub fn absorb(&self, lemma: Lemma) {
        let mut inner = self.inner.lock().expect("lemma store poisoned");
        let epoch = inner.epoch;
        if let Some(stamp) = inner.lemmas.get_mut(&lemma) {
            *stamp = epoch;
            return;
        }
        if inner.lemmas.len() >= inner.max_lemmas {
            return;
        }
        inner.lemmas.insert(lemma, epoch);
        inner.absorbed += 1;
    }

    /// Marks seeded lemmas as used this epoch (called once per solver
    /// query that replayed them, with the batch of replayed lemmas).
    pub fn touch_all<'a>(&self, lemmas: impl IntoIterator<Item = &'a Lemma>) {
        let mut inner = self.inner.lock().expect("lemma store poisoned");
        let epoch = inner.epoch;
        for lemma in lemmas {
            if let Some(stamp) = inner.lemmas.get_mut(lemma) {
                *stamp = epoch;
            }
        }
    }

    /// An immutable snapshot of the resident lemmas, in deterministic
    /// (sorted) order, with a first-key index for cheap applicability
    /// probing. Cheap to clone; one snapshot is shared by every solver
    /// of a batch run.
    pub fn snapshot(&self) -> LemmaSeed {
        let inner = self.inner.lock().expect("lemma store poisoned");
        let lemmas: Vec<Lemma> = inner.lemmas.keys().cloned().collect();
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (id, lemma) in lemmas.iter().enumerate() {
            index.entry(lemma[0].0.clone()).or_default().push(id);
        }
        LemmaSeed {
            shared: Arc::new(SeedShared { lemmas, index }),
        }
    }

    /// Closes one GC epoch: lemmas neither absorbed nor replayed for two
    /// full epochs are dropped.
    pub fn advance_epoch(&self) {
        let mut inner = self.inner.lock().expect("lemma store poisoned");
        let epoch = inner.epoch;
        let before = inner.lemmas.len();
        inner.lemmas.retain(|_, stamp| *stamp + 1 >= epoch);
        inner.evicted += before - inner.lemmas.len();
        inner.epoch = epoch + 1;
    }

    /// Current counters.
    pub fn stats(&self) -> LemmaStoreStats {
        let inner = self.inner.lock().expect("lemma store poisoned");
        LemmaStoreStats {
            resident: inner.lemmas.len(),
            absorbed: inner.absorbed,
            evicted: inner.evicted,
            epoch: inner.epoch as usize,
        }
    }

    /// The resident lemmas in deterministic order, for session
    /// snapshots.
    pub fn export_lemmas(&self) -> Vec<Lemma> {
        let inner = self.inner.lock().expect("lemma store poisoned");
        inner.lemmas.keys().cloned().collect()
    }
}

#[derive(Debug)]
struct SeedShared {
    lemmas: Vec<Lemma>,
    index: HashMap<String, Vec<usize>>,
}

/// An immutable snapshot of a [`SharedLemmaStore`], frozen at a batch
/// boundary. Every solver of the batch replays from the same seed, so
/// within-run results cannot depend on which worker learned what first.
#[derive(Debug, Clone)]
pub struct LemmaSeed {
    shared: Arc<SeedShared>,
}

impl LemmaSeed {
    /// An empty seed (cold start).
    pub fn empty() -> LemmaSeed {
        LemmaSeed {
            shared: Arc::new(SeedShared {
                lemmas: Vec::new(),
                index: HashMap::new(),
            }),
        }
    }

    /// Number of seeded lemmas.
    pub fn len(&self) -> usize {
        self.shared.lemmas.len()
    }

    /// True if the seed carries no lemmas.
    pub fn is_empty(&self) -> bool {
        self.shared.lemmas.is_empty()
    }

    /// The lemma ids indexed under `first_key` (each lemma is indexed
    /// under exactly its smallest key, so iterating a query's atom keys
    /// visits every applicable lemma once).
    pub fn ids_for_first_key(&self, first_key: &str) -> &[usize] {
        self.shared
            .index
            .get(first_key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The literals of lemma `id`.
    pub fn lemma(&self, id: usize) -> &Lemma {
        &self.shared.lemmas[id]
    }

    /// True if the seed already carries this (sorted) lemma — used to
    /// keep a run's private store from double-asserting a seeded lemma.
    pub fn contains(&self, lemma: &Lemma) -> bool {
        self.ids_for_first_key(&lemma[0].0)
            .iter()
            .any(|&id| self.lemma(id) == lemma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lemma(keys: &[(&str, bool)]) -> Lemma {
        let mut l: Lemma = keys.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        l.sort();
        l
    }

    #[test]
    fn absorb_dedups_and_snapshot_is_sorted() {
        let store = SharedLemmaStore::new();
        store.absorb(lemma(&[("b", true), ("a", false)]));
        store.absorb(lemma(&[("a", false), ("b", true)]));
        store.absorb(lemma(&[("c", true)]));
        let stats = store.stats();
        assert_eq!((stats.resident, stats.absorbed), (2, 2));
        let seed = store.snapshot();
        assert_eq!(seed.len(), 2);
        assert!(seed.contains(&lemma(&[("a", false), ("b", true)])));
        assert!(!seed.contains(&lemma(&[("a", true)])));
        assert_eq!(seed.ids_for_first_key("a").len(), 1);
        assert_eq!(seed.ids_for_first_key("zzz").len(), 0);
    }

    #[test]
    fn epoch_gc_keeps_touched_lemmas_for_two_epochs() {
        let store = SharedLemmaStore::new();
        store.absorb(lemma(&[("a", true)]));
        store.absorb(lemma(&[("b", true)]));
        store.advance_epoch();
        // Epoch 1: replaying `a` refreshes it; `b` goes cold.
        store.touch_all([&lemma(&[("a", true)])]);
        store.advance_epoch();
        assert_eq!(store.stats().resident, 2, "one cold epoch survives");
        store.advance_epoch();
        let stats = store.stats();
        assert_eq!(stats.resident, 1, "two cold epochs evict");
        assert_eq!(stats.evicted, 1);
        assert!(store.snapshot().contains(&lemma(&[("a", true)])));
    }

    #[test]
    fn size_bound_drops_new_lemmas_not_old_ones() {
        let store = SharedLemmaStore::with_max_lemmas(1);
        store.absorb(lemma(&[("a", true)]));
        store.absorb(lemma(&[("b", true)]));
        let seed = store.snapshot();
        assert_eq!(seed.len(), 1);
        assert!(seed.contains(&lemma(&[("a", true)])));
    }
}
