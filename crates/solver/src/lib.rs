//! # synquid-solver
//!
//! The SMT substrate of the Synquid reproduction.
//!
//! The original Synquid uses Z3 to discharge the quantifier-free
//! verification conditions produced by liquid type checking. This crate
//! provides a from-scratch replacement covering exactly the fragment the
//! synthesizer needs:
//!
//! * linear integer arithmetic (a general simplex over exact rationals
//!   with branch-and-bound, [`lia`]),
//! * uninterpreted functions via Ackermann reduction ([`encode`]),
//! * the ground theory of finite sets via finite-witness reduction
//!   ([`encode`]),
//! * a CDCL SAT solver for the propositional structure ([`sat`]),
//! * a lazy DPLL(T) driver exposing `Sat`/`Valid` queries ([`smt`]),
//! * MARCO-style enumeration of minimal unsatisfiable subsets ([`mus`]),
//!   which powers the MUSFIX fixpoint strengthening of the paper,
//! * a shared, thread-safe validity cache over interned terms ([`cache`]),
//!   which lets the parallel engine reuse solver verdicts across goals,
//!   portfolio siblings, and iterative-deepening rungs.
//!
//! ## Example
//!
//! ```
//! use synquid_logic::{Term, Sort};
//! use synquid_solver::Smt;
//!
//! let x = Term::var("x", Sort::Int);
//! let y = Term::var("y", Sort::Int);
//! let mut smt = Smt::new();
//! assert!(smt.entails(&x.clone().lt(y.clone()), &x.le(y)));
//! ```

pub mod cache;
pub mod cancel;
pub mod encode;
pub mod lemmas;
pub mod lia;
pub mod mus;
pub mod rational;
pub mod sat;
pub mod smt;

pub use cache::{NormalizedQuery, SharedValidityCache, ValidityCacheStats};
pub use cancel::CancellationToken;
pub use lemmas::{Lemma, LemmaSeed, LemmaStoreStats, SharedLemmaStore};
pub use mus::{enumerate_mus, enumerate_mus_smt, MusConfig};
pub use rational::Rational;
pub use sat::{Lit, SatResult, SatSolver};
pub use smt::{Smt, SmtResult, SmtStats};
