//! Cooperative cancellation, observed all the way down in the DPLL(T)
//! loop.
//!
//! The token used to live in `synquid-core`, where only the synthesizer's
//! own deadline checks (between candidates, between enumeration levels)
//! could observe it. A single liquid-abduction round can spend tens of
//! seconds inside one fixpoint strengthening — thousands of SMT queries —
//! so budget enforcement that stops *between* queries overshoots per-goal
//! budgets by minutes. Defining the token here lets [`crate::smt::Smt`]
//! poll it (together with a wall-clock deadline) inside its solving
//! loops, which is what bounds a goal's overshoot to one SAT/LIA step.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation flag shared between the thread driving a
/// synthesis run and whoever may want to stop it early (the portfolio
/// scheduler cancels losing rungs; a frontend may cancel on user
/// interrupt). Cancellation is observed at the synthesizer's deadline
/// checks *and* inside the SMT solving loops, and surfaces as a timeout.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    cancelled: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancellationToken {
        CancellationToken::default()
    }

    /// Requests cancellation; all clones of the token observe it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](CancellationToken::cancel) has been called on
    /// any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_is_visible_through_clones() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }
}
