//! A shared, thread-safe validity cache over interned terms.
//!
//! Synthesis spends almost all of its time in SMT validity queries, and
//! the same obligations recur across backtracking, iterative-deepening
//! rungs, portfolio siblings, and goals that share a component library.
//! [`SharedValidityCache`] is the cross-solver memo table: it is shared
//! by every [`Smt`](crate::Smt) instance of a batch run (clone the handle
//! and attach it with [`Smt::attach_cache`](crate::Smt::attach_cache)),
//! and keyed by *normalized, interned* `(antecedent, consequent)` query
//! pairs: each probe walks the normalized terms once against the
//! hash-consing table (under a read lock, so concurrent workers don't
//! serialize on hits), and the memo map itself stores and compares only
//! compact `(TermId, TermId)` keys, with every shared subterm stored
//! once. Normalization (constant folding) happens in
//! [`SharedValidityCache::normalize`], outside any lock.
//!
//! A query `antecedent ⇒ consequent` is recorded under the pair of
//! [`TermId`]s of the constant-folded sides; plain satisfiability checks
//! are the degenerate pair with consequent `false` (`sat(f)` is the
//! complement of `valid(f ⇒ false)`). Cached values are the raw
//! [`SmtResult`] of the underlying satisfiability check, so `Unknown`
//! answers are reused as conservatively as fresh ones.
//!
//! # Residency
//!
//! A resident session keeps one cache alive across many batch runs, so
//! the table can no longer grow for process lifetime. Two mechanisms
//! bound it:
//!
//! - **size bound** — inserts beyond [`SharedValidityCache::max_entries`]
//!   first sweep out entries not touched in the current epoch (at most
//!   once per epoch, so a full warm table can't thrash), then refuse;
//! - **epoch GC** — [`SharedValidityCache::advance_epoch`] runs at batch
//!   boundaries: every lookup hit or insert stamps its entry with the
//!   current epoch, entries cold for two full epochs are dropped, and
//!   the interner is compacted to exactly the nodes the surviving keys
//!   still reach (see [`Interner::compact`]).
//!
//! Eviction is always sound: a cached verdict is a pure function of its
//! key, so dropping an entry only means the same query is re-solved (to
//! the identical verdict) if it ever recurs.

use crate::smt::SmtResult;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use synquid_logic::simplify::fold_constants;
use synquid_logic::{Interner, Term, TermId};

/// Counters exposed by [`SharedValidityCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidityCacheStats {
    /// Queries answered from the cache.
    pub hits: usize,
    /// Queries that had to be solved (and were then inserted).
    pub misses: usize,
    /// Subset of `hits` whose cached answer was negative (`Unsat`, i.e.
    /// the entailment *held* / the conjunction was contradictory) —
    /// the expensive verdicts that are most valuable to reuse.
    pub negative_hits: usize,
    /// Distinct query pairs stored.
    pub entries: usize,
    /// Distinct hash-consed term nodes behind the keys.
    pub interned_nodes: usize,
    /// Query pairs evicted by epoch GC or overflow sweeps (monotone).
    pub entries_evicted: usize,
    /// Term nodes ever interned behind the keys (monotone).
    pub terms_interned: usize,
    /// Term nodes dropped by interner compaction (monotone).
    pub terms_evicted: usize,
    /// GC epochs advanced since the cache was created.
    pub epoch: usize,
}

impl ValidityCacheStats {
    /// Hit rate in `[0, 1]`; `0` when no queries were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters accumulated since an earlier snapshot of the same
    /// cache — how one run of a resident session behaved, as opposed to
    /// the session's lifetime totals. Point-in-time gauges (`entries`,
    /// `interned_nodes`, `epoch`) keep their end-of-run values.
    pub fn since(&self, earlier: &ValidityCacheStats) -> ValidityCacheStats {
        ValidityCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            negative_hits: self.negative_hits - earlier.negative_hits,
            entries: self.entries,
            interned_nodes: self.interned_nodes,
            entries_evicted: self.entries_evicted - earlier.entries_evicted,
            terms_interned: self.terms_interned - earlier.terms_interned,
            terms_evicted: self.terms_evicted - earlier.terms_evicted,
            epoch: self.epoch,
        }
    }
}

/// One memoized verdict, stamped with the epoch that last used it. The
/// stamp is atomic so lookup hits (which hold only the read lock) can
/// refresh it.
#[derive(Debug)]
struct Entry {
    result: SmtResult,
    epoch: AtomicU32,
}

#[derive(Debug, Default)]
struct CacheTable {
    interner: Interner,
    memo: std::collections::HashMap<(TermId, TermId), Entry>,
    /// Epoch of the last overflow sweep, so a table that is full of
    /// this-epoch entries refuses further inserts instead of sweeping
    /// (and finding nothing) on every one.
    swept_epoch: Option<u32>,
}

/// The shared state: the table behind a read/write lock (lookups are
/// read-only thanks to [`Interner::find`], so hits from many workers
/// proceed concurrently) and counters as atomics so probes never need
/// the write lock.
#[derive(Debug)]
struct CacheShared {
    table: RwLock<CacheTable>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    negative_hits: AtomicUsize,
    entries_evicted: AtomicUsize,
    epoch: AtomicU32,
    max_entries: usize,
}

impl Default for CacheShared {
    fn default() -> CacheShared {
        CacheShared {
            table: RwLock::default(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            negative_hits: AtomicUsize::new(0),
            entries_evicted: AtomicUsize::new(0),
            epoch: AtomicU32::new(0),
            max_entries: SharedValidityCache::DEFAULT_MAX_ENTRIES,
        }
    }
}

/// A cloneable handle to a concurrent validity memo table. All clones
/// share the same underlying table; the handle is `Send + Sync` and is
/// designed to be attached to one [`Smt`](crate::Smt) per worker thread.
#[derive(Debug, Clone, Default)]
pub struct SharedValidityCache {
    inner: Arc<CacheShared>,
}

/// A validity query with normalization (constant folding) already
/// applied — compute it once with [`SharedValidityCache::normalize`],
/// outside any lock, and reuse it for the lookup *and* the insert of
/// the same query.
#[derive(Debug, Clone)]
pub struct NormalizedQuery {
    antecedent: Term,
    consequent: Term,
}

impl SharedValidityCache {
    /// Default cap on stored entries, sized for unbounded one-shot batch
    /// runs; resident sessions usually configure a smaller bound through
    /// [`SharedValidityCache::with_max_entries`].
    pub const DEFAULT_MAX_ENTRIES: usize = 1_000_000;

    /// Creates an empty cache with the default size bound.
    pub fn new() -> SharedValidityCache {
        SharedValidityCache::default()
    }

    /// Creates an empty cache bounded to at most `max_entries` stored
    /// query pairs (clamped to at least 1).
    pub fn with_max_entries(max_entries: usize) -> SharedValidityCache {
        SharedValidityCache {
            inner: Arc::new(CacheShared {
                max_entries: max_entries.max(1),
                ..CacheShared::default()
            }),
        }
    }

    /// The configured entry bound.
    pub fn max_entries(&self) -> usize {
        self.inner.max_entries
    }

    /// Normalizes a query pair. Pure (no lock taken): callers on the hot
    /// path pay the folding once per query, not once per cache call.
    pub fn normalize(antecedent: &Term, consequent: &Term) -> NormalizedQuery {
        NormalizedQuery {
            antecedent: fold_constants(antecedent),
            consequent: fold_constants(consequent),
        }
    }

    /// Looks up a normalized query. Returns the cached [`SmtResult`] of
    /// `sat(antecedent ∧ ¬consequent)` if the same pair was solved
    /// before. Probing is read-only ([`Interner::find`] never inserts),
    /// so concurrent lookups share a read lock, misses never grow the
    /// interner, and the entry bound really bounds memory. A hit stamps
    /// the entry with the current epoch (atomically, still under the
    /// read lock), which is what keeps it alive across epoch GCs.
    pub fn lookup_normalized(&self, query: &NormalizedQuery) -> Option<SmtResult> {
        let epoch = self.inner.epoch.load(Ordering::Relaxed);
        let cached = {
            let table = self.inner.table.read().expect("validity cache poisoned");
            match (
                table.interner.find(&query.antecedent),
                table.interner.find(&query.consequent),
            ) {
                (Some(a), Some(c)) => table.memo.get(&(a, c)).map(|entry| {
                    entry.epoch.store(epoch, Ordering::Relaxed);
                    entry.result
                }),
                _ => None,
            }
        };
        match cached {
            Some(result) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                if result == SmtResult::Unsat {
                    self.inner.negative_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(result)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records the result of a normalized query. At the size bound, one
    /// sweep per epoch evicts entries not touched this epoch; if the
    /// table is still full the insert is refused (a refused insert only
    /// means the query is re-solved, to the identical verdict, next
    /// time).
    pub fn insert_normalized(&self, query: &NormalizedQuery, result: SmtResult) {
        let epoch = self.inner.epoch.load(Ordering::Relaxed);
        let mut table = self.inner.table.write().expect("validity cache poisoned");
        if table.memo.len() >= self.inner.max_entries {
            // Updating an existing key never grows the table.
            let existing = match (
                table.interner.find(&query.antecedent),
                table.interner.find(&query.consequent),
            ) {
                (Some(a), Some(c)) => table.memo.contains_key(&(a, c)),
                _ => false,
            };
            if !existing {
                if table.swept_epoch == Some(epoch) {
                    return;
                }
                table.swept_epoch = Some(epoch);
                let before = table.memo.len();
                table
                    .memo
                    .retain(|_, entry| entry.epoch.load(Ordering::Relaxed) >= epoch);
                self.inner
                    .entries_evicted
                    .fetch_add(before - table.memo.len(), Ordering::Relaxed);
                if table.memo.len() >= self.inner.max_entries {
                    return;
                }
            }
        }
        let key = (
            table.interner.intern(&query.antecedent),
            table.interner.intern(&query.consequent),
        );
        table.memo.insert(
            key,
            Entry {
                result,
                epoch: AtomicU32::new(epoch),
            },
        );
    }

    /// Convenience wrapper: [`normalize`](Self::normalize) + lookup.
    pub fn lookup(&self, antecedent: &Term, consequent: &Term) -> Option<SmtResult> {
        self.lookup_normalized(&Self::normalize(antecedent, consequent))
    }

    /// Convenience wrapper: [`normalize`](Self::normalize) + insert.
    pub fn insert(&self, antecedent: &Term, consequent: &Term, result: SmtResult) {
        self.insert_normalized(&Self::normalize(antecedent, consequent), result)
    }

    /// Closes one GC epoch: entries not touched for two full epochs are
    /// dropped, the interner is compacted to the nodes the surviving
    /// keys still reach, and the epoch counter advances. Resident
    /// sessions call this at batch-run boundaries; one-shot runs never
    /// do, which reproduces the old unbounded-growth behaviour within a
    /// single run.
    pub fn advance_epoch(&self) {
        let mut table = self.inner.table.write().expect("validity cache poisoned");
        let epoch = self.inner.epoch.load(Ordering::Relaxed);
        let before = table.memo.len();
        // Keep entries touched in the current or previous epoch; an entry
        // last touched in epoch `e` survives the GCs closing epochs `e`
        // and `e + 1` and is dropped by the GC closing `e + 2` — two full
        // cold epochs.
        table
            .memo
            .retain(|_, entry| entry.epoch.load(Ordering::Relaxed) + 1 >= epoch);
        self.inner
            .entries_evicted
            .fetch_add(before - table.memo.len(), Ordering::Relaxed);
        let roots: Vec<TermId> = table.memo.keys().flat_map(|&(a, c)| [a, c]).collect();
        let remap = table.interner.compact(roots);
        table.memo = table
            .memo
            .drain()
            .map(|((a, c), entry)| {
                let a = remap[a.index()].expect("memo key survived GC");
                let c = remap[c.index()].expect("memo key survived GC");
                ((a, c), entry)
            })
            .collect();
        table.swept_epoch = None;
        self.inner.epoch.store(epoch + 1, Ordering::Relaxed);
    }

    /// Resolves every stored `Sat`/`Unsat` entry back to its term pair,
    /// for session snapshots. `Unknown` entries are skipped: they are
    /// cheap to rediscover and may be shaped by the budget of the run
    /// that produced them, so persisting them across processes would be
    /// misleading.
    pub fn export_entries(&self) -> Vec<(Term, Term, SmtResult)> {
        let table = self.inner.table.read().expect("validity cache poisoned");
        let mut out: Vec<(Term, Term, SmtResult)> = table
            .memo
            .iter()
            .filter(|(_, entry)| entry.result != SmtResult::Unknown)
            .map(|(&(a, c), entry)| {
                (
                    table.interner.resolve(a),
                    table.interner.resolve(c),
                    entry.result,
                )
            })
            .collect();
        // Deterministic snapshot order (HashMap iteration is not).
        out.sort();
        out
    }

    /// Seeds one already-normalized entry, counting neither a hit nor a
    /// miss — the warm-start path of a session snapshot load.
    pub fn preload(&self, antecedent: Term, consequent: Term, result: SmtResult) {
        self.insert_normalized(
            &NormalizedQuery {
                antecedent,
                consequent,
            },
            result,
        );
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> ValidityCacheStats {
        let table = self.inner.table.read().expect("validity cache poisoned");
        ValidityCacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            negative_hits: self.inner.negative_hits.load(Ordering::Relaxed),
            entries: table.memo.len(),
            interned_nodes: table.interner.len(),
            entries_evicted: self.inner.entries_evicted.load(Ordering::Relaxed),
            terms_interned: table.interner.total_interned(),
            terms_evicted: table.interner.total_evicted(),
            epoch: self.inner.epoch.load(Ordering::Relaxed) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::Sort;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }
    fn y() -> Term {
        Term::var("y", Sort::Int)
    }

    #[test]
    fn lookup_misses_then_hits() {
        let cache = SharedValidityCache::new();
        let (p, c) = (x().le(y()), x().lt(y().plus(Term::int(1))));
        assert_eq!(cache.lookup(&p, &c), None);
        cache.insert(&p, &c, SmtResult::Unsat);
        assert_eq!(cache.lookup(&p, &c), Some(SmtResult::Unsat));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.negative_hits), (1, 1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn normalization_folds_constants_before_keying() {
        let cache = SharedValidityCache::new();
        // 1 + 1 folds to 2, so both phrasings share one entry.
        cache.insert(
            &x().le(Term::int(1).plus(Term::int(1))),
            &Term::ff(),
            SmtResult::Sat,
        );
        assert_eq!(
            cache.lookup(&x().le(Term::int(2)), &Term::ff()),
            Some(SmtResult::Sat)
        );
    }

    #[test]
    fn clones_share_the_table_across_threads() {
        let cache = SharedValidityCache::new();
        let writer = cache.clone();
        let handle = std::thread::spawn(move || {
            writer.insert(&x().eq(x()), &Term::ff(), SmtResult::Sat);
        });
        handle.join().unwrap();
        assert_eq!(
            cache.lookup(&x().eq(x()), &Term::ff()),
            Some(SmtResult::Sat)
        );
    }

    #[test]
    fn distinct_pairs_do_not_collide() {
        let cache = SharedValidityCache::new();
        cache.insert(&x().le(y()), &Term::ff(), SmtResult::Sat);
        assert_eq!(cache.lookup(&y().le(x()), &Term::ff()), None);
        assert_eq!(cache.lookup(&x().le(y()), &x().le(y())), None);
    }

    #[test]
    fn epoch_gc_drops_two_cold_entries_and_keeps_touched_ones() {
        let cache = SharedValidityCache::new();
        cache.insert(&x().le(y()), &Term::ff(), SmtResult::Sat);
        cache.insert(&y().le(x()), &Term::ff(), SmtResult::Sat);
        // Epoch 0 closes: both were touched this epoch, both survive.
        cache.advance_epoch();
        assert_eq!(cache.stats().entries, 2);
        // Epoch 1: only the first entry is touched.
        assert!(cache.lookup(&x().le(y()), &Term::ff()).is_some());
        cache.advance_epoch();
        assert_eq!(cache.stats().entries, 2, "one cold epoch is not enough");
        // Epoch 2: neither is touched; closing it drops the entry that
        // has now been cold for two full epochs.
        cache.advance_epoch();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(cache.lookup(&y().le(x()), &Term::ff()), None);
        assert_eq!(
            cache.lookup(&x().le(y()), &Term::ff()),
            Some(SmtResult::Sat)
        );
        assert!(stats.entries_evicted >= 1);
        assert!(stats.terms_evicted > 0, "interner compacts with the memo");
        assert_eq!(
            stats.terms_interned - stats.terms_evicted,
            stats.interned_nodes
        );
    }

    #[test]
    fn size_bound_sweeps_cold_entries_then_refuses() {
        let cache = SharedValidityCache::with_max_entries(2);
        cache.insert(&x().le(Term::int(0)), &Term::ff(), SmtResult::Sat);
        cache.insert(&x().le(Term::int(1)), &Term::ff(), SmtResult::Sat);
        // Full of this-epoch entries: the sweep finds nothing and the
        // insert is refused.
        cache.insert(&x().le(Term::int(2)), &Term::ff(), SmtResult::Sat);
        assert_eq!(cache.lookup(&x().le(Term::int(2)), &Term::ff()), None);
        assert_eq!(cache.stats().entries, 2);
        // Next epoch, the old entries are cold; an insert sweeps them out
        // and takes their place.
        cache.advance_epoch();
        cache.insert(&x().le(Term::int(3)), &Term::ff(), SmtResult::Sat);
        assert_eq!(
            cache.lookup(&x().le(Term::int(3)), &Term::ff()),
            Some(SmtResult::Sat)
        );
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn export_skips_unknowns_and_preload_round_trips() {
        let cache = SharedValidityCache::new();
        cache.insert(&x().le(y()), &Term::ff(), SmtResult::Unsat);
        cache.insert(&y().le(x()), &Term::ff(), SmtResult::Unknown);
        let exported = cache.export_entries();
        assert_eq!(exported.len(), 1);
        let fresh = SharedValidityCache::new();
        for (a, c, r) in exported {
            fresh.preload(a, c, r);
        }
        assert_eq!(
            fresh.lookup(&x().le(y()), &Term::ff()),
            Some(SmtResult::Unsat)
        );
        assert_eq!(fresh.lookup(&y().le(x()), &Term::ff()), None);
    }

    #[test]
    fn delta_stats_subtract_an_earlier_snapshot() {
        let cache = SharedValidityCache::new();
        cache.insert(&x().le(y()), &Term::ff(), SmtResult::Sat);
        cache.lookup(&x().le(y()), &Term::ff());
        let mid = cache.stats();
        cache.lookup(&x().le(y()), &Term::ff());
        cache.lookup(&y().le(x()), &Term::ff());
        let delta = cache.stats().since(&mid);
        assert_eq!((delta.hits, delta.misses), (1, 1));
        assert_eq!(delta.entries, 1, "gauges keep end-of-run values");
    }
}
