//! A shared, thread-safe validity cache over interned terms.
//!
//! Synthesis spends almost all of its time in SMT validity queries, and
//! the same obligations recur across backtracking, iterative-deepening
//! rungs, portfolio siblings, and goals that share a component library.
//! [`SharedValidityCache`] is the cross-solver memo table: it is shared
//! by every [`Smt`](crate::Smt) instance of a batch run (clone the handle
//! and attach it with [`Smt::attach_cache`](crate::Smt::attach_cache)),
//! and keyed by *normalized, interned* `(antecedent, consequent)` query
//! pairs: each probe walks the normalized terms once against the
//! hash-consing table (under a read lock, so concurrent workers don't
//! serialize on hits), and the memo map itself stores and compares only
//! compact `(TermId, TermId)` keys, with every shared subterm stored
//! once. Normalization (constant folding) happens in
//! [`SharedValidityCache::normalize`], outside any lock.
//!
//! A query `antecedent ⇒ consequent` is recorded under the pair of
//! [`TermId`]s of the constant-folded sides; plain satisfiability checks
//! are the degenerate pair with consequent `false` (`sat(f)` is the
//! complement of `valid(f ⇒ false)`). Cached values are the raw
//! [`SmtResult`] of the underlying satisfiability check, so `Unknown`
//! answers are reused as conservatively as fresh ones.

use crate::smt::SmtResult;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use synquid_logic::simplify::fold_constants;
use synquid_logic::{Interner, Term, TermId};

/// Counters exposed by [`SharedValidityCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidityCacheStats {
    /// Queries answered from the cache.
    pub hits: usize,
    /// Queries that had to be solved (and were then inserted).
    pub misses: usize,
    /// Subset of `hits` whose cached answer was negative (`Unsat`, i.e.
    /// the entailment *held* / the conjunction was contradictory) —
    /// the expensive verdicts that are most valuable to reuse.
    pub negative_hits: usize,
    /// Distinct query pairs stored.
    pub entries: usize,
    /// Distinct hash-consed term nodes behind the keys.
    pub interned_nodes: usize,
}

impl ValidityCacheStats {
    /// Hit rate in `[0, 1]`; `0` when no queries were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheTable {
    interner: Interner,
    memo: std::collections::HashMap<(TermId, TermId), SmtResult>,
}

/// The shared state: the table behind a read/write lock (lookups are
/// read-only thanks to [`Interner::find`], so hits from many workers
/// proceed concurrently) and counters as atomics so probes never need
/// the write lock.
#[derive(Debug, Default)]
struct CacheShared {
    table: RwLock<CacheTable>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    negative_hits: AtomicUsize,
}

/// A cloneable handle to a concurrent validity memo table. All clones
/// share the same underlying table; the handle is `Send + Sync` and is
/// designed to be attached to one [`Smt`](crate::Smt) per worker thread.
#[derive(Debug, Clone, Default)]
pub struct SharedValidityCache {
    inner: Arc<CacheShared>,
}

/// Cap on stored entries: beyond this the cache stops inserting (lookups
/// still work), bounding memory on pathological batch runs.
const MAX_ENTRIES: usize = 1_000_000;

/// A validity query with normalization (constant folding) already
/// applied — compute it once with [`SharedValidityCache::normalize`],
/// outside any lock, and reuse it for the lookup *and* the insert of
/// the same query.
#[derive(Debug, Clone)]
pub struct NormalizedQuery {
    antecedent: Term,
    consequent: Term,
}

impl SharedValidityCache {
    /// Creates an empty cache.
    pub fn new() -> SharedValidityCache {
        SharedValidityCache::default()
    }

    /// Normalizes a query pair. Pure (no lock taken): callers on the hot
    /// path pay the folding once per query, not once per cache call.
    pub fn normalize(antecedent: &Term, consequent: &Term) -> NormalizedQuery {
        NormalizedQuery {
            antecedent: fold_constants(antecedent),
            consequent: fold_constants(consequent),
        }
    }

    /// Looks up a normalized query. Returns the cached [`SmtResult`] of
    /// `sat(antecedent ∧ ¬consequent)` if the same pair was solved
    /// before. Probing is read-only ([`Interner::find`] never inserts),
    /// so concurrent lookups share a read lock, misses never grow the
    /// interner, and the `MAX_ENTRIES` bound really bounds memory.
    pub fn lookup_normalized(&self, query: &NormalizedQuery) -> Option<SmtResult> {
        let cached = {
            let table = self.inner.table.read().expect("validity cache poisoned");
            match (
                table.interner.find(&query.antecedent),
                table.interner.find(&query.consequent),
            ) {
                (Some(a), Some(c)) => table.memo.get(&(a, c)).copied(),
                _ => None,
            }
        };
        match cached {
            Some(result) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                if result == SmtResult::Unsat {
                    self.inner.negative_hits.fetch_add(1, Ordering::Relaxed);
                }
                Some(result)
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records the result of a normalized query.
    pub fn insert_normalized(&self, query: &NormalizedQuery, result: SmtResult) {
        let mut table = self.inner.table.write().expect("validity cache poisoned");
        if table.memo.len() >= MAX_ENTRIES {
            return;
        }
        let key = (
            table.interner.intern(&query.antecedent),
            table.interner.intern(&query.consequent),
        );
        table.memo.insert(key, result);
    }

    /// Convenience wrapper: [`normalize`](Self::normalize) + lookup.
    pub fn lookup(&self, antecedent: &Term, consequent: &Term) -> Option<SmtResult> {
        self.lookup_normalized(&Self::normalize(antecedent, consequent))
    }

    /// Convenience wrapper: [`normalize`](Self::normalize) + insert.
    pub fn insert(&self, antecedent: &Term, consequent: &Term, result: SmtResult) {
        self.insert_normalized(&Self::normalize(antecedent, consequent), result)
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> ValidityCacheStats {
        let table = self.inner.table.read().expect("validity cache poisoned");
        ValidityCacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            negative_hits: self.inner.negative_hits.load(Ordering::Relaxed),
            entries: table.memo.len(),
            interned_nodes: table.interner.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synquid_logic::Sort;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }
    fn y() -> Term {
        Term::var("y", Sort::Int)
    }

    #[test]
    fn lookup_misses_then_hits() {
        let cache = SharedValidityCache::new();
        let (p, c) = (x().le(y()), x().lt(y().plus(Term::int(1))));
        assert_eq!(cache.lookup(&p, &c), None);
        cache.insert(&p, &c, SmtResult::Unsat);
        assert_eq!(cache.lookup(&p, &c), Some(SmtResult::Unsat));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.negative_hits), (1, 1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn normalization_folds_constants_before_keying() {
        let cache = SharedValidityCache::new();
        // 1 + 1 folds to 2, so both phrasings share one entry.
        cache.insert(
            &x().le(Term::int(1).plus(Term::int(1))),
            &Term::ff(),
            SmtResult::Sat,
        );
        assert_eq!(
            cache.lookup(&x().le(Term::int(2)), &Term::ff()),
            Some(SmtResult::Sat)
        );
    }

    #[test]
    fn clones_share_the_table_across_threads() {
        let cache = SharedValidityCache::new();
        let writer = cache.clone();
        let handle = std::thread::spawn(move || {
            writer.insert(&x().eq(x()), &Term::ff(), SmtResult::Sat);
        });
        handle.join().unwrap();
        assert_eq!(
            cache.lookup(&x().eq(x()), &Term::ff()),
            Some(SmtResult::Sat)
        );
    }

    #[test]
    fn distinct_pairs_do_not_collide() {
        let cache = SharedValidityCache::new();
        cache.insert(&x().le(y()), &Term::ff(), SmtResult::Sat);
        assert_eq!(cache.lookup(&y().le(x()), &Term::ff()), None);
        assert_eq!(cache.lookup(&x().le(y()), &x().le(y())), None);
    }
}
