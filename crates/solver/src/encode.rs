//! Encoding of refinement formulas into the solver's internal form.
//!
//! The pipeline turns an arbitrary quantifier-free [`Term`] of the
//! refinement logic into a propositional skeleton over *theory atoms*:
//!
//! 1. **normalize** — constant folding, `ite` elimination, boolean
//!    equality → bi-implication;
//! 2. **set elimination** — the ground theory of finite sets (union,
//!    intersection, difference, singletons, membership, subset, equality)
//!    is reduced to boolean membership atoms over the *relevant element
//!    terms* plus one fresh witness element per negative extensionality
//!    atom (a standard finite-witnessing argument: the reduction is
//!    equisatisfiable for this fragment);
//! 3. **atomization** — integer-modelled equalities are split into `≤ ∧ ≥`
//!    and disequalities into `< ∨ >`, so every remaining theory atom is a
//!    single linear comparison or an opaque boolean atom;
//! 4. **purification / Ackermannization** — applications of uninterpreted
//!    functions (measures, membership predicates) are replaced by fresh
//!    variables and functional-consistency clauses are added for every
//!    pair of applications of the same symbol.
//!
//! The result is an [`Encoded`] problem: a boolean skeleton whose leaves
//! index into a table of [`TheoryAtom`]s, ready for the DPLL(T) loop in
//! [`crate::smt`].

use crate::lia::{Constraint, LinExpr, VarId};
use crate::rational::Rational;
use std::collections::BTreeMap;
use synquid_logic::simplify::{eliminate_ite, fold_constants, nnf};
use synquid_logic::{BinOp, Sort, Term, UnOp};

/// A propositional skeleton over theory atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Skeleton {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A literal: an atom index with a polarity.
    Lit(usize, bool),
    /// Conjunction.
    And(Vec<Skeleton>),
    /// Disjunction.
    Or(Vec<Skeleton>),
}

impl Skeleton {
    fn and(items: Vec<Skeleton>) -> Skeleton {
        let mut out = Vec::new();
        for i in items {
            match i {
                Skeleton::True => {}
                Skeleton::False => return Skeleton::False,
                Skeleton::And(xs) => out.extend(xs),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Skeleton::True,
            1 => out.pop().unwrap(),
            _ => Skeleton::And(out),
        }
    }

    fn or(items: Vec<Skeleton>) -> Skeleton {
        let mut out = Vec::new();
        for i in items {
            match i {
                Skeleton::False => {}
                Skeleton::True => return Skeleton::True,
                Skeleton::Or(xs) => out.extend(xs),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Skeleton::False,
            1 => out.pop().unwrap(),
            _ => Skeleton::Or(out),
        }
    }
}

/// A theory atom referenced from the skeleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TheoryAtom {
    /// A linear comparison `lhs ⋈ rhs` with `⋈ ∈ {≤, <, ≥, >}` over the
    /// integer-modelled arithmetic variables.
    Compare(BinOp, LinExpr, LinExpr),
    /// An opaque boolean atom (a boolean variable or a purified boolean
    /// application such as a set-membership predicate).
    Opaque(String),
}

/// The encoded problem.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Boolean skeleton of the input formula.
    pub skeleton: Skeleton,
    /// Additional skeletons that must hold (functional-consistency
    /// clauses from Ackermannization).
    pub side_conditions: Vec<Skeleton>,
    /// Theory atoms indexed by the skeleton's literals.
    pub atoms: Vec<TheoryAtom>,
    /// Number of arithmetic variables used by the [`TheoryAtom::Compare`]
    /// atoms.
    pub num_arith_vars: usize,
    /// Canonical names of the arithmetic variables, indexed by [`VarId`]
    /// (`v:<name>` for program variables, `app:<term>` for purified
    /// applications, …). Arithmetic variable *ids* are allocation-order
    /// local to one encoder, so anything that must be compared across
    /// queries — the incremental solver's learned theory conflicts above
    /// all — goes through these names instead (see
    /// [`Encoded::portable_atom_key`]).
    pub arith_names: Vec<String>,
}

impl Encoded {
    /// A canonical, *encoder-independent* key for a theory atom, used to
    /// match learned theory conflicts across queries. Comparison atoms are
    /// sign-normalized to `d ≤ 0` / `d < 0` and rendered over the
    /// arithmetic variables' canonical names (sorted), so `x ≤ y` in one
    /// query and `y ≥ x` in another produce the same key even though
    /// their [`VarId`]s differ. Opaque atoms have no arithmetic content
    /// and never participate in theory conflicts, so they yield `None`.
    pub fn portable_atom_key(&self, atom: usize) -> Option<String> {
        let TheoryAtom::Compare(op, lhs, rhs) = &self.atoms[atom] else {
            return None;
        };
        let diff = lhs.minus(rhs);
        let (tag, diff) = match op {
            BinOp::Le => ("le", diff),
            BinOp::Lt => ("lt", diff),
            BinOp::Ge => ("le", diff.scaled(-Rational::ONE)),
            BinOp::Gt => ("lt", diff.scaled(-Rational::ONE)),
            _ => return None,
        };
        let mut parts: Vec<String> = diff
            .coeffs
            .iter()
            .map(|(v, c)| format!("{c:?}*[{}]", self.arith_names[*v]))
            .collect();
        parts.sort();
        Some(format!("{tag}:{:?}:{}", diff.constant, parts.join("+")))
    }

    /// Converts a comparison atom (with the given truth value) into a LIA
    /// constraint. Opaque atoms yield `None`.
    pub fn atom_constraint(&self, atom: usize, positive: bool) -> Option<Constraint> {
        match &self.atoms[atom] {
            TheoryAtom::Opaque(_) => None,
            TheoryAtom::Compare(op, lhs, rhs) => {
                let (op, lhs, rhs) = if positive {
                    (*op, lhs.clone(), rhs.clone())
                } else {
                    // Negate the comparison over the integers.
                    match op {
                        BinOp::Le => (BinOp::Gt, lhs.clone(), rhs.clone()),
                        BinOp::Lt => (BinOp::Ge, lhs.clone(), rhs.clone()),
                        BinOp::Ge => (BinOp::Lt, lhs.clone(), rhs.clone()),
                        BinOp::Gt => (BinOp::Le, lhs.clone(), rhs.clone()),
                        _ => unreachable!("comparison atoms are only ≤ < ≥ >"),
                    }
                };
                Some(match op {
                    BinOp::Le => Constraint::le(lhs, rhs),
                    BinOp::Lt => Constraint::lt_int(lhs, rhs),
                    BinOp::Ge => Constraint::ge(lhs, rhs),
                    BinOp::Gt => Constraint::gt_int(lhs, rhs),
                    _ => unreachable!(),
                })
            }
        }
    }
}

/// The encoder. A single encoder instance is used per query so that
/// arithmetic variables, atoms, and purified applications are shared
/// across the formula (and across the background/soft split used by MUS
/// enumeration).
#[derive(Debug, Default)]
pub struct Encoder {
    atoms: Vec<TheoryAtom>,
    atom_index: BTreeMap<String, usize>,
    arith_vars: BTreeMap<String, VarId>,
    side_conditions: Vec<Skeleton>,
    /// Purified applications: function name -> list of
    /// (argument terms, canonical key, result sort).
    apps: BTreeMap<String, Vec<(Vec<Term>, String, Sort)>>,
    /// Extra element terms unioned into every set-elimination universe
    /// (see [`Encoder::seed_universe`]).
    universe_seed: Vec<Term>,
    /// Disequality witnesses keyed by their negative set atom. Pooling
    /// makes witness choice deterministic across `encode` calls on the
    /// same encoder: when [`Encoder::seed_universe`] pre-creates the
    /// witness for `¬(a = b)`, a later `encode` of a formula containing
    /// that atom reuses the *same* witness variable, so the universal
    /// expansions already instantiated at the seeded witness actually
    /// constrain the existential that ends up in the skeleton. (Reusing
    /// one Skolem constant for repeated occurrences of the same
    /// existential atom is equisatisfiable.)
    witness_pool: BTreeMap<Term, Term>,
    fresh_counter: usize,
}

impl Encoder {
    /// Creates a fresh encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Encodes a formula, reusing atoms and variables from previous calls
    /// on the same encoder.
    pub fn encode(&mut self, term: &Term) -> Skeleton {
        let normalized = normalize(term);
        let set_free = self.eliminate_sets(&normalized);
        let atomized = nnf(&atomize(&set_free));
        self.to_skeleton(&atomized)
    }

    /// Finishes encoding: adds Ackermann functional-consistency
    /// constraints and returns the full problem for the given skeleton.
    pub fn finish(&mut self, skeleton: Skeleton) -> Encoded {
        self.add_congruence_conditions();
        let mut arith_names = vec![String::new(); self.arith_vars.len()];
        for (name, id) in &self.arith_vars {
            arith_names[*id] = name.clone();
        }
        Encoded {
            skeleton,
            side_conditions: self.side_conditions.clone(),
            atoms: self.atoms.clone(),
            num_arith_vars: self.arith_vars.len(),
            arith_names,
        }
    }

    // -----------------------------------------------------------------
    // Set elimination
    // -----------------------------------------------------------------

    /// Seeds the set-elimination universe with the relevant element terms
    /// (and fresh disequality witnesses) of `term`, without encoding it.
    ///
    /// The MUS enumerator encodes each soft constraint separately against
    /// one shared encoder; seeding from the *full* conjunction first makes
    /// every per-constraint universe a superset of what a from-scratch
    /// encoding of any subset would have used. That is sound: the universe
    /// under-approximates set extensionality, and enlarging it only
    /// sharpens the finite-model abstraction (adds conjuncts to universal
    /// expansions, disjuncts to existential ones — both implied by the
    /// real set semantics).
    pub fn seed_universe(&mut self, term: &Term) {
        let t = nnf(&normalize(term));
        collect_element_terms(&t, &mut self.universe_seed);
        let witnesses = self.create_witnesses(&t);
        self.universe_seed.extend(witnesses.into_values());
        dedup_terms(&mut self.universe_seed);
    }

    fn eliminate_sets(&mut self, term: &Term) -> Term {
        // Work on the NNF so polarity of set atoms is syntactically evident.
        let t = nnf(term);
        // Pass 1: relevant element terms and witnesses, plus any seeded
        // universe (shared MUS encodings seed from the full conjunction).
        let mut elements: Vec<Term> = Vec::new();
        collect_element_terms(&t, &mut elements);
        elements.extend(self.universe_seed.iter().cloned());
        let witnesses = self.create_witnesses(&t);
        let mut universe = elements;
        universe.extend(witnesses.values().cloned());
        dedup_terms(&mut universe);
        // Pass 2: rewrite.
        self.rewrite_sets(&t, &universe, &witnesses)
    }

    fn create_witnesses(&mut self, t: &Term) -> BTreeMap<Term, Term> {
        let mut atoms = Vec::new();
        collect_negative_set_atoms(t, true, &mut |atom| atoms.push(atom.clone()));
        atoms
            .into_iter()
            .map(|atom| {
                let w = self.witness_for(&atom);
                (atom, w)
            })
            .collect()
    }

    /// The pooled disequality witness for a negative set atom, created on
    /// first use (see the `witness_pool` field for why pooling matters).
    fn witness_for(&mut self, atom: &Term) -> Term {
        if let Some(w) = self.witness_pool.get(atom) {
            return w.clone();
        }
        let elem_sort = set_operand_elem_sort(atom).unwrap_or(Sort::Int);
        let w = Term::var(format!("$w{}", self.fresh_counter), elem_sort);
        self.fresh_counter += 1;
        self.witness_pool.insert(atom.clone(), w.clone());
        w
    }

    fn rewrite_sets(
        &mut self,
        t: &Term,
        universe: &[Term],
        witnesses: &BTreeMap<Term, Term>,
    ) -> Term {
        match t {
            Term::Binary(BinOp::And, a, b) => self
                .rewrite_sets(a, universe, witnesses)
                .and(self.rewrite_sets(b, universe, witnesses)),
            Term::Binary(BinOp::Or, a, b) => self
                .rewrite_sets(a, universe, witnesses)
                .or(self.rewrite_sets(b, universe, witnesses)),
            Term::Unary(UnOp::Not, inner) => {
                self.rewrite_set_atom(inner, false, universe, witnesses.get(inner.as_ref()))
            }
            atom => self.rewrite_set_atom(atom, true, universe, witnesses.get(t)),
        }
    }

    fn rewrite_set_atom(
        &mut self,
        atom: &Term,
        positive: bool,
        universe: &[Term],
        witness: Option<&Term>,
    ) -> Term {
        let wrap = |t: Term| if positive { t } else { t.not() };
        match atom {
            Term::Binary(op @ (BinOp::Eq | BinOp::Neq | BinOp::Subset), a, b)
                if matches!(a.sort(), Sort::Set(_)) =>
            {
                // Effective polarity of the extensionality constraint.
                let is_equality = matches!(op, BinOp::Eq | BinOp::Neq);
                let universal = positive == matches!(op, BinOp::Eq | BinOp::Subset);
                if universal {
                    // ∀ e ∈ universe. mem(e,a) ⇔/⇒ mem(e,b)
                    let mut parts = Vec::new();
                    for e in universe {
                        let ma = self.membership(e, a);
                        let mb = self.membership(e, b);
                        let part = if is_equality {
                            ma.clone().and(mb.clone()).or(ma.not().and(mb.not()))
                        } else {
                            ma.not().or(mb)
                        };
                        parts.push(part);
                    }
                    let body = Term::conjunction(parts);
                    if positive {
                        body
                    } else {
                        // ¬(a ≠ b) ≡ a = b handled above; ¬(a ⊄ b) does not occur.
                        body
                    }
                } else {
                    // ∃ witness w distinguishing the two sides.
                    let w = match witness {
                        Some(w) => w.clone(),
                        None => self.witness_for(atom),
                    };
                    let ma = self.membership(&w, a);
                    let mb = self.membership(&w, b);
                    if is_equality {
                        // a ≠ b: some element is in exactly one side.
                        ma.clone().and(mb.clone().not()).or(ma.not().and(mb))
                    } else {
                        // ¬(a ⊆ b): some element in a but not b.
                        ma.and(mb.not())
                    }
                }
            }
            Term::Binary(BinOp::Member, e, s) => {
                let m = self.membership(e, s);
                wrap(m)
            }
            _ => wrap(atom.clone()),
        }
    }

    /// The membership formula `e ∈ s`, expanded structurally; membership in
    /// a base set (variable or measure application) becomes an opaque
    /// predicate application `$in<idx>(e)`.
    fn membership(&mut self, e: &Term, s: &Term) -> Term {
        match s {
            Term::SetLit(_, elems) => {
                Term::disjunction(elems.iter().map(|x| e.clone().eq(x.clone())))
            }
            Term::Binary(BinOp::Union, a, b) => self.membership(e, a).or(self.membership(e, b)),
            Term::Binary(BinOp::Intersect, a, b) => {
                self.membership(e, a).and(self.membership(e, b))
            }
            Term::Binary(BinOp::Diff, a, b) => {
                self.membership(e, a).and(self.membership(e, b).not())
            }
            Term::Ite(c, a, b) => {
                let ma = self.membership(e, a);
                let mb = self.membership(e, b);
                (*c.clone()).and(ma).or(c.clone().not().and(mb))
            }
            base => {
                let key = format!("$in[{base}]");
                Term::app(key, vec![e.clone()], Sort::Bool)
            }
        }
    }

    // -----------------------------------------------------------------
    // Skeleton construction & purification
    // -----------------------------------------------------------------

    #[allow(clippy::wrong_self_convention)]
    fn to_skeleton(&mut self, t: &Term) -> Skeleton {
        match t {
            Term::BoolLit(true) => Skeleton::True,
            Term::BoolLit(false) => Skeleton::False,
            Term::Binary(BinOp::And, a, b) => {
                Skeleton::and(vec![self.to_skeleton(a), self.to_skeleton(b)])
            }
            Term::Binary(BinOp::Or, a, b) => {
                Skeleton::or(vec![self.to_skeleton(a), self.to_skeleton(b)])
            }
            Term::Unary(UnOp::Not, inner) => match self.to_skeleton(inner) {
                Skeleton::Lit(a, p) => Skeleton::Lit(a, !p),
                Skeleton::True => Skeleton::False,
                Skeleton::False => Skeleton::True,
                other => {
                    // Should not happen on NNF input; negate literal-wise.
                    negate_skeleton(other)
                }
            },
            atom => Skeleton::Lit(self.atom_literal(atom), true),
        }
    }

    fn atom_literal(&mut self, atom: &Term) -> usize {
        // Boolean applications share their index with the purified key so
        // that Ackermann congruence clauses constrain the same atom.
        let key = if matches!(atom, Term::App(_, _, _)) {
            format!("app:{atom}")
        } else {
            atom.to_string()
        };
        if let Some(&idx) = self.atom_index.get(&key) {
            return idx;
        }
        let theory_atom = match atom {
            Term::Binary(op @ (BinOp::Le | BinOp::Lt | BinOp::Ge | BinOp::Gt), a, b) => {
                let lhs = self.linearize(a);
                let rhs = self.linearize(b);
                TheoryAtom::Compare(*op, lhs, rhs)
            }
            Term::Binary(BinOp::Eq | BinOp::Neq, _, _) => {
                // Equalities over integer-modelled sorts were atomized away;
                // any residual equality (e.g. over an unknown sort) is opaque.
                TheoryAtom::Opaque(key.clone())
            }
            Term::Var(name, Sort::Bool) => TheoryAtom::Opaque(name.clone()),
            Term::App(_, _, _) => {
                // A boolean-valued application: purify it so that
                // congruence clauses relate applications with equal
                // arguments.
                let var_key = self.purify_app(atom);
                TheoryAtom::Opaque(var_key)
            }
            _ => TheoryAtom::Opaque(key.clone()),
        };
        let idx = self.atoms.len();
        self.atoms.push(theory_atom);
        self.atom_index.insert(key, idx);
        idx
    }

    /// Converts an integer-modelled term into a linear expression,
    /// introducing arithmetic variables for opaque sub-terms.
    fn linearize(&mut self, t: &Term) -> LinExpr {
        match t {
            Term::IntLit(n) => LinExpr::constant(Rational::from_int(*n)),
            Term::Var(name, _) => LinExpr::variable(self.arith_var(&format!("v:{name}"))),
            Term::Unary(UnOp::Neg, inner) => self.linearize(inner).scaled(-Rational::ONE),
            Term::Binary(BinOp::Plus, a, b) => self.linearize(a).plus(&self.linearize(b)),
            Term::Binary(BinOp::Minus, a, b) => self.linearize(a).minus(&self.linearize(b)),
            Term::Binary(BinOp::Times, a, b) => {
                let la = self.linearize(a);
                let lb = self.linearize(b);
                if la.is_constant() {
                    lb.scaled(la.constant)
                } else if lb.is_constant() {
                    la.scaled(lb.constant)
                } else {
                    // Non-linear product: model it as an opaque variable.
                    LinExpr::variable(self.arith_var(&format!("nl:{t}")))
                }
            }
            Term::App(_, _, _) => {
                let key = self.purify_app(t);
                LinExpr::variable(self.arith_var(&key))
            }
            _ => LinExpr::variable(self.arith_var(&format!("opaque:{t}"))),
        }
    }

    fn arith_var(&mut self, key: &str) -> VarId {
        if let Some(&v) = self.arith_vars.get(key) {
            return v;
        }
        let v = self.arith_vars.len();
        self.arith_vars.insert(key.to_string(), v);
        v
    }

    /// Purifies an application term: returns the canonical key of the
    /// fresh variable standing for its value and records the application
    /// for congruence-constraint generation.
    fn purify_app(&mut self, t: &Term) -> String {
        let Term::App(name, args, result) = t else {
            unreachable!("purify_app on non-application")
        };
        let key = format!("app:{t}");
        let entry = self.apps.entry(name.clone()).or_default();
        if !entry.iter().any(|(_, k, _)| k == &key) {
            entry.push((args.clone(), key.clone(), result.clone()));
        }
        key
    }

    /// Adds Ackermann functional-consistency side conditions:
    /// for every pair of applications `f(a⃗)` and `f(b⃗)`,
    /// `a⃗ = b⃗ ⇒ f(a⃗) = f(b⃗)`.
    fn add_congruence_conditions(&mut self) {
        let apps = self.apps.clone();
        for (name, instances) in &apps {
            for i in 0..instances.len() {
                for j in (i + 1)..instances.len() {
                    let (args_i, key_i, result_sort) = &instances[i];
                    let (args_j, key_j, _) = &instances[j];
                    if args_i.len() != args_j.len() {
                        continue;
                    }
                    // Skip congruence over set-sorted arguments (sets have
                    // been eliminated; their applications use distinct
                    // canonical names anyway).
                    if args_i
                        .iter()
                        .chain(args_j.iter())
                        .any(|a| matches!(a.sort(), Sort::Set(_)))
                    {
                        continue;
                    }
                    let mut antecedent = Vec::new();
                    for (a, b) in args_i.iter().zip(args_j) {
                        if a == b {
                            continue;
                        }
                        if a.sort() == Sort::Bool {
                            // Boolean argument equality is not expressible
                            // as a linear atom; skip this pair (sound:
                            // fewer consequences).
                            antecedent.clear();
                            break;
                        }
                        let la = self.linearize(a);
                        let lb = self.linearize(b);
                        let le = self.compare_atom(BinOp::Le, la.clone(), lb.clone());
                        let ge = self.compare_atom(BinOp::Ge, la, lb);
                        antecedent.push(Skeleton::Lit(le, true));
                        antecedent.push(Skeleton::Lit(ge, true));
                    }
                    if args_i
                        .iter()
                        .zip(args_j.iter())
                        .any(|(a, b)| a != b && a.sort() == Sort::Bool)
                    {
                        continue;
                    }
                    let consequent = self.result_equality(result_sort, key_i, key_j);
                    let _ = name;
                    let mut clause: Vec<Skeleton> =
                        antecedent.into_iter().map(negate_skeleton).collect();
                    clause.push(consequent);
                    self.side_conditions.push(Skeleton::or(clause));
                }
            }
        }
    }

    fn compare_atom(&mut self, op: BinOp, lhs: LinExpr, rhs: LinExpr) -> usize {
        let key = format!("cmp:{op:?}:{lhs:?}:{rhs:?}");
        if let Some(&idx) = self.atom_index.get(&key) {
            return idx;
        }
        let idx = self.atoms.len();
        self.atoms.push(TheoryAtom::Compare(op, lhs, rhs));
        self.atom_index.insert(key, idx);
        idx
    }

    fn opaque_atom(&mut self, key: &str) -> usize {
        if let Some(&idx) = self.atom_index.get(key) {
            return idx;
        }
        let idx = self.atoms.len();
        self.atoms.push(TheoryAtom::Opaque(key.to_string()));
        self.atom_index.insert(key.to_string(), idx);
        idx
    }

    fn result_equality(&mut self, result_sort: &Sort, key_i: &str, key_j: &str) -> Skeleton {
        // Boolean-valued applications (membership predicates, boolean
        // measures) need an iff; integer-valued ones an arithmetic equality.
        if *result_sort == Sort::Bool {
            let bi = self.opaque_atom(key_i);
            let bj = self.opaque_atom(key_j);
            // bi ⇔ bj  ≡  (¬bi ∨ bj) ∧ (bi ∨ ¬bj)
            Skeleton::and(vec![
                Skeleton::or(vec![Skeleton::Lit(bi, false), Skeleton::Lit(bj, true)]),
                Skeleton::or(vec![Skeleton::Lit(bi, true), Skeleton::Lit(bj, false)]),
            ])
        } else {
            let vi = LinExpr::variable(self.arith_var(key_i));
            let vj = LinExpr::variable(self.arith_var(key_j));
            let le = self.compare_atom(BinOp::Le, vi.clone(), vj.clone());
            let ge = self.compare_atom(BinOp::Ge, vi, vj);
            Skeleton::and(vec![Skeleton::Lit(le, true), Skeleton::Lit(ge, true)])
        }
    }
}

fn negate_skeleton(s: Skeleton) -> Skeleton {
    match s {
        Skeleton::True => Skeleton::False,
        Skeleton::False => Skeleton::True,
        Skeleton::Lit(a, p) => Skeleton::Lit(a, !p),
        Skeleton::And(xs) => Skeleton::or(xs.into_iter().map(negate_skeleton).collect()),
        Skeleton::Or(xs) => Skeleton::and(xs.into_iter().map(negate_skeleton).collect()),
    }
}

/// Pre-NNF normalization: constant folding, `ite` elimination, boolean
/// equality to bi-implication.
pub fn normalize(t: &Term) -> Term {
    let t = fold_constants(t);
    let t = eliminate_ite(&t);
    bool_eq_to_iff(&t)
}

fn bool_eq_to_iff(t: &Term) -> Term {
    match t {
        Term::Binary(BinOp::Eq, a, b) if a.sort() == Sort::Bool || b.sort() == Sort::Bool => {
            bool_eq_to_iff(a).iff(bool_eq_to_iff(b))
        }
        Term::Binary(BinOp::Neq, a, b) if a.sort() == Sort::Bool || b.sort() == Sort::Bool => {
            bool_eq_to_iff(a).iff(bool_eq_to_iff(b)).not()
        }
        Term::Binary(op, a, b) => Term::Binary(
            *op,
            Box::new(bool_eq_to_iff(a)),
            Box::new(bool_eq_to_iff(b)),
        ),
        Term::Unary(op, a) => Term::Unary(*op, Box::new(bool_eq_to_iff(a))),
        Term::Ite(c, a, b) => Term::Ite(
            Box::new(bool_eq_to_iff(c)),
            Box::new(bool_eq_to_iff(a)),
            Box::new(bool_eq_to_iff(b)),
        ),
        _ => t.clone(),
    }
}

/// Post set-elimination atomization: integer-modelled equalities become
/// `≤ ∧ ≥`, disequalities become `< ∨ >`.
fn atomize(t: &Term) -> Term {
    match t {
        Term::Binary(BinOp::And, a, b) => atomize(a).and(atomize(b)),
        Term::Binary(BinOp::Or, a, b) => atomize(a).or(atomize(b)),
        Term::Binary(BinOp::Implies, a, b) => atomize(a).implies(atomize(b)),
        Term::Binary(BinOp::Iff, a, b) => atomize(a).iff(atomize(b)),
        Term::Unary(UnOp::Not, a) => atomize(a).not(),
        Term::Binary(BinOp::Eq, a, b) if is_int_modelled(&a.sort()) => {
            let le = (**a).clone().le((**b).clone());
            let ge = (**a).clone().ge((**b).clone());
            le.and(ge)
        }
        Term::Binary(BinOp::Neq, a, b) if is_int_modelled(&a.sort()) => {
            let lt = (**a).clone().lt((**b).clone());
            let gt = (**a).clone().gt((**b).clone());
            lt.or(gt)
        }
        _ => t.clone(),
    }
}

fn is_int_modelled(sort: &Sort) -> bool {
    matches!(
        sort,
        Sort::Int | Sort::Var(_) | Sort::Data(_, _) | Sort::Unknown
    )
}

fn set_operand_elem_sort(atom: &Term) -> Option<Sort> {
    if let Term::Binary(_, a, _) = atom {
        if let Sort::Set(e) = a.sort() {
            return Some(*e);
        }
    }
    None
}

fn collect_element_terms(t: &Term, out: &mut Vec<Term>) {
    t.walk(&mut |sub| match sub {
        Term::SetLit(_, elems) => out.extend(elems.iter().cloned()),
        Term::Binary(BinOp::Member, e, _) => out.push((**e).clone()),
        _ => {}
    });
}

fn collect_negative_set_atoms(t: &Term, positive: bool, f: &mut impl FnMut(&Term)) {
    match t {
        Term::Binary(BinOp::And | BinOp::Or, a, b) => {
            collect_negative_set_atoms(a, positive, f);
            collect_negative_set_atoms(b, positive, f);
        }
        Term::Unary(UnOp::Not, inner) => collect_negative_set_atoms(inner, !positive, f),
        Term::Binary(BinOp::Eq, a, _) if matches!(a.sort(), Sort::Set(_)) && !positive => f(t),
        Term::Binary(BinOp::Neq, a, _) if matches!(a.sort(), Sort::Set(_)) && positive => f(t),
        Term::Binary(BinOp::Subset, a, _) if matches!(a.sort(), Sort::Set(_)) && !positive => f(t),
        _ => {}
    }
}

fn dedup_terms(terms: &mut Vec<Term>) {
    let mut seen = std::collections::BTreeSet::new();
    terms.retain(|t| seen.insert(t.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }
    fn y() -> Term {
        Term::var("y", Sort::Int)
    }

    #[test]
    fn skeleton_flattens_boolean_constants() {
        assert_eq!(
            Skeleton::and(vec![Skeleton::True, Skeleton::True]),
            Skeleton::True
        );
        assert_eq!(
            Skeleton::and(vec![Skeleton::False, Skeleton::Lit(0, true)]),
            Skeleton::False
        );
        assert_eq!(Skeleton::or(vec![Skeleton::False]), Skeleton::False);
        assert_eq!(
            Skeleton::or(vec![Skeleton::True, Skeleton::Lit(0, true)]),
            Skeleton::True
        );
    }

    #[test]
    fn encode_simple_comparison() {
        let mut enc = Encoder::new();
        let sk = enc.encode(&x().le(y()));
        let problem = enc.finish(sk.clone());
        assert!(matches!(sk, Skeleton::Lit(0, true)));
        assert!(matches!(
            problem.atoms[0],
            TheoryAtom::Compare(BinOp::Le, _, _)
        ));
    }

    #[test]
    fn equalities_are_atomized_into_le_and_ge() {
        let mut enc = Encoder::new();
        let sk = enc.encode(&x().eq(y()));
        match sk {
            Skeleton::And(items) => assert_eq!(items.len(), 2),
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn shared_atoms_are_reused() {
        let mut enc = Encoder::new();
        let s1 = enc.encode(&x().le(y()));
        let s2 = enc.encode(&x().le(y()));
        // Encoding the same atom twice must not allocate a second atom.
        match (s1, s2) {
            (Skeleton::Lit(a, true), Skeleton::Lit(b, true)) => assert_eq!(a, b),
            other => panic!("expected the same literal twice, got {other:?}"),
        }
        let problem = enc.finish(Skeleton::True);
        assert_eq!(problem.atoms.len(), 1);
    }

    #[test]
    fn negated_le_flips_to_gt_via_nnf() {
        let mut enc = Encoder::new();
        // NNF turns ¬(x ≤ y) into x > y, a fresh atom with positive polarity.
        let sk = enc.encode(&x().le(y()).not());
        // Either representation is acceptable; check it is a single literal.
        match sk {
            Skeleton::Lit(_, _) => {}
            other => panic!("expected literal, got {other:?}"),
        }
    }

    #[test]
    fn set_equality_expands_over_relevant_elements() {
        // elems_v = elems_xs ∪ [x]  — one positive equality; the universe is {x}.
        let elem = Sort::Int;
        let sv = Term::var("sv", Sort::set(elem.clone()));
        let sxs = Term::var("sxs", Sort::set(elem.clone()));
        let atom = sv.clone().eq(sxs.clone().union(Term::singleton(elem, x())));
        let mut enc = Encoder::new();
        let sk = enc.encode(&atom);
        let problem = enc.finish(sk);
        // Atoms: membership of x in sv, membership of x in sxs, x == x (folded away or
        // represented as comparisons). At minimum the two membership predicates exist.
        let opaque: Vec<_> = problem
            .atoms
            .iter()
            .filter(|a| matches!(a, TheoryAtom::Opaque(_)))
            .collect();
        assert!(
            opaque.len() >= 2,
            "expected membership atoms, got {:?}",
            problem.atoms
        );
    }

    #[test]
    fn measure_application_becomes_arith_var() {
        let xs = Term::var("xs", Sort::data("List", vec![Sort::var("a")]));
        let t = Term::app("len", vec![xs], Sort::Int).ge(Term::int(0));
        let mut enc = Encoder::new();
        let sk = enc.encode(&t);
        let problem = enc.finish(sk);
        assert_eq!(problem.atoms.len(), 1);
        assert!(problem.num_arith_vars >= 1);
    }

    #[test]
    fn congruence_clauses_are_emitted_for_equal_function_applications() {
        let a = Term::var("a", Sort::Int);
        let b = Term::var("b", Sort::Int);
        let fa = Term::app("f", vec![a.clone()], Sort::Int);
        let fb = Term::app("f", vec![b.clone()], Sort::Int);
        // a = b ∧ f a < f b  — needs congruence to be refuted.
        let t = a.eq(b).and(fa.lt(fb));
        let mut enc = Encoder::new();
        let sk = enc.encode(&t);
        let problem = enc.finish(sk);
        assert!(
            !problem.side_conditions.is_empty(),
            "expected Ackermann side conditions"
        );
    }
}
