//! Linear integer arithmetic: a general simplex over exact rationals
//! (in the style of Dutertre & de Moura) with branch-and-bound for
//! integrality.
//!
//! The solver decides satisfiability of conjunctions of linear constraints
//! `Σ aᵢ·xᵢ ⋈ c` with `⋈ ∈ {≤, ≥, =, <, >}`. All problem variables are
//! integer-valued (the refinement logic models every ordered sort as the
//! integers), so strict inequalities are normalised away (`x < c` becomes
//! `x ≤ c − 1`) and a rational relaxation is refined by branch-and-bound.

use crate::rational::Rational;
use std::collections::BTreeMap;

/// Identifier of an arithmetic variable.
pub type VarId = usize;

/// A linear expression `Σ aᵢ·xᵢ + c`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Coefficients per variable (no zero entries).
    pub coeffs: BTreeMap<VarId, Rational>,
    /// Constant offset.
    pub constant: Rational,
}

impl LinExpr {
    /// The constant expression `c`.
    pub fn constant(c: Rational) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression consisting of a single variable.
    pub fn variable(v: VarId) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, Rational::ONE);
        LinExpr {
            coeffs,
            constant: Rational::ZERO,
        }
    }

    /// Adds another expression scaled by `k`.
    pub fn add_scaled(&mut self, other: &LinExpr, k: Rational) {
        for (v, a) in &other.coeffs {
            let entry = self.coeffs.entry(*v).or_insert(Rational::ZERO);
            *entry = *entry + *a * k;
        }
        self.constant = self.constant + other.constant * k;
        self.coeffs.retain(|_, a| !a.is_zero());
    }

    /// `self + other`.
    pub fn plus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.add_scaled(other, Rational::ONE);
        out
    }

    /// `self - other`.
    pub fn minus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.add_scaled(other, -Rational::ONE);
        out
    }

    /// `k * self`.
    pub fn scaled(&self, k: Rational) -> LinExpr {
        let mut out = LinExpr::default();
        out.add_scaled(self, k);
        out
    }

    /// True if the expression mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates the expression under an assignment (missing variables are
    /// treated as zero).
    pub fn eval(&self, assignment: &BTreeMap<VarId, Rational>) -> Rational {
        let mut acc = self.constant;
        for (v, a) in &self.coeffs {
            let val = assignment.get(v).copied().unwrap_or(Rational::ZERO);
            acc = acc + *a * val;
        }
        acc
    }
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `expr ≤ 0`
    Le,
    /// `expr = 0`
    Eq,
    /// `expr ≥ 0`
    Ge,
}

/// A linear constraint `expr ⋈ 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Relation against zero.
    pub rel: Rel,
}

impl Constraint {
    /// `lhs ≤ rhs`.
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint {
            expr: lhs.minus(&rhs),
            rel: Rel::Le,
        }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint {
            expr: lhs.minus(&rhs),
            rel: Rel::Eq,
        }
    }

    /// `lhs ≥ rhs`.
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint {
            expr: lhs.minus(&rhs),
            rel: Rel::Ge,
        }
    }

    /// `lhs < rhs` over the integers (`lhs ≤ rhs − 1`).
    pub fn lt_int(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        let mut expr = lhs.minus(&rhs);
        expr.constant = expr.constant + Rational::ONE;
        Constraint { expr, rel: Rel::Le }
    }

    /// `lhs > rhs` over the integers (`lhs ≥ rhs + 1`).
    pub fn gt_int(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        let mut expr = lhs.minus(&rhs);
        expr.constant = expr.constant - Rational::ONE;
        Constraint { expr, rel: Rel::Ge }
    }

    fn holds(&self, assignment: &BTreeMap<VarId, Rational>) -> bool {
        let v = self.expr.eval(assignment);
        match self.rel {
            Rel::Le => v <= Rational::ZERO,
            Rel::Eq => v.is_zero(),
            Rel::Ge => v >= Rational::ZERO,
        }
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiaResult {
    /// Satisfiable with an integer model.
    Sat(BTreeMap<VarId, Rational>),
    /// Unsatisfiable.
    Unsat,
    /// The branch-and-bound budget was exhausted; treated as "possibly
    /// satisfiable" by callers (conservative for validity checking).
    Unknown,
}

impl LiaResult {
    /// True unless the result is [`LiaResult::Unsat`].
    pub fn possibly_sat(&self) -> bool {
        !matches!(self, LiaResult::Unsat)
    }
}

/// A simplex tableau specialised to feasibility checking.
#[derive(Debug, Clone)]
struct Simplex {
    /// Number of variables (problem + slack).
    num_vars: usize,
    /// Rows: basic variable -> linear combination of non-basic variables.
    rows: BTreeMap<VarId, BTreeMap<VarId, Rational>>,
    /// Lower bounds.
    lower: BTreeMap<VarId, Rational>,
    /// Upper bounds.
    upper: BTreeMap<VarId, Rational>,
    /// Current assignment β.
    beta: BTreeMap<VarId, Rational>,
    /// Total pivots performed over the tableau's lifetime.
    pivots: u64,
}

impl Simplex {
    fn new(num_problem_vars: usize) -> Simplex {
        Simplex {
            num_vars: num_problem_vars,
            rows: BTreeMap::new(),
            lower: BTreeMap::new(),
            upper: BTreeMap::new(),
            beta: BTreeMap::new(),
            pivots: 0,
        }
    }

    fn beta(&self, v: VarId) -> Rational {
        self.beta.get(&v).copied().unwrap_or(Rational::ZERO)
    }

    fn set_beta(&mut self, v: VarId, val: Rational) {
        self.beta.insert(v, val);
    }

    /// Introduces a slack variable equal to the given combination of
    /// problem variables and returns its id.
    fn add_slack(&mut self, combo: &BTreeMap<VarId, Rational>) -> VarId {
        let s = self.num_vars;
        self.num_vars += 1;
        // The slack starts basic: s = Σ aᵢ·xᵢ, where each xᵢ is currently
        // non-basic (or basic — substitute its row).
        let mut row: BTreeMap<VarId, Rational> = BTreeMap::new();
        for (v, a) in combo {
            if let Some(vrow) = self.rows.get(v).cloned() {
                for (w, b) in vrow {
                    let e = row.entry(w).or_insert(Rational::ZERO);
                    *e = *e + *a * b;
                }
            } else {
                let e = row.entry(*v).or_insert(Rational::ZERO);
                *e = *e + *a;
            }
        }
        row.retain(|_, a| !a.is_zero());
        let val = row
            .iter()
            .map(|(v, a)| *a * self.beta(*v))
            .fold(Rational::ZERO, |x, y| x + y);
        self.rows.insert(s, row);
        self.set_beta(s, val);
        s
    }

    fn assert_upper(&mut self, v: VarId, c: Rational) -> bool {
        if let Some(l) = self.lower.get(&v) {
            if *l > c {
                return false;
            }
        }
        let tighter = match self.upper.get(&v) {
            Some(u) => c < *u,
            None => true,
        };
        if tighter {
            self.upper.insert(v, c);
            if !self.rows.contains_key(&v) && self.beta(v) > c {
                self.update_nonbasic(v, c);
            }
        }
        true
    }

    fn assert_lower(&mut self, v: VarId, c: Rational) -> bool {
        if let Some(u) = self.upper.get(&v) {
            if *u < c {
                return false;
            }
        }
        let tighter = match self.lower.get(&v) {
            Some(l) => c > *l,
            None => true,
        };
        if tighter {
            self.lower.insert(v, c);
            if !self.rows.contains_key(&v) && self.beta(v) < c {
                self.update_nonbasic(v, c);
            }
        }
        true
    }

    /// Sets a non-basic variable to a new value and updates all basic rows.
    fn update_nonbasic(&mut self, v: VarId, val: Rational) {
        let delta = val - self.beta(v);
        if delta.is_zero() {
            return;
        }
        let rows: Vec<(VarId, Rational)> = self
            .rows
            .iter()
            .filter_map(|(b, row)| row.get(&v).map(|a| (*b, *a)))
            .collect();
        for (b, a) in rows {
            let nb = self.beta(b) + a * delta;
            self.set_beta(b, nb);
        }
        self.set_beta(v, val);
    }

    /// Pivot: basic variable `b` leaves the basis, non-basic `n` enters.
    fn pivot(&mut self, b: VarId, n: VarId, new_b_value: Rational) {
        self.pivots += 1;
        let row_b = self.rows.remove(&b).expect("pivot on non-basic row");
        let a_bn = *row_b.get(&n).expect("entering variable not in row");
        // b = Σ a_bj x_j  =>  n = (b - Σ_{j≠n} a_bj x_j) / a_bn
        let mut row_n: BTreeMap<VarId, Rational> = BTreeMap::new();
        row_n.insert(b, a_bn.recip());
        for (j, a) in &row_b {
            if *j != n {
                row_n.insert(*j, -*a / a_bn);
            }
        }
        row_n.retain(|_, a| !a.is_zero());

        // Substitute n's new definition into every other row.
        let keys: Vec<VarId> = self.rows.keys().copied().collect();
        for k in keys {
            let row = self.rows.get(&k).cloned().unwrap_or_default();
            if let Some(a_kn) = row.get(&n).copied() {
                let mut new_row = row.clone();
                new_row.remove(&n);
                for (j, a) in &row_n {
                    let e = new_row.entry(*j).or_insert(Rational::ZERO);
                    *e = *e + a_kn * *a;
                }
                new_row.retain(|_, a| !a.is_zero());
                self.rows.insert(k, new_row);
            }
        }
        self.rows.insert(n, row_n);

        // Update assignments: b takes its target value, n is recomputed so
        // that b's row still holds, and all other basic variables follow.
        let delta_b = new_b_value - self.beta(b);
        let delta_n = delta_b / a_bn;
        let new_n = self.beta(n) + delta_n;

        // Recompute every basic variable's value from scratch after the
        // non-basic update (simpler than incremental bookkeeping and still
        // cheap at our problem sizes).
        self.set_beta(b, new_b_value);
        self.set_beta(n, new_n);
        let basics: Vec<VarId> = self.rows.keys().copied().collect();
        for bb in basics {
            let row = &self.rows[&bb];
            let val = row
                .iter()
                .map(|(v, a)| *a * self.beta(*v))
                .fold(Rational::ZERO, |x, y| x + y);
            self.set_beta(bb, val);
        }
    }

    /// Restores feasibility (the "check" procedure of the general simplex).
    fn check(&mut self) -> bool {
        let max_iters = 10_000;
        for _ in 0..max_iters {
            // Find a basic variable violating one of its bounds (Bland's
            // rule: smallest id first, to guarantee termination).
            let violated = self.rows.keys().copied().find(|b| {
                let v = self.beta(*b);
                self.lower.get(b).is_some_and(|l| v < *l)
                    || self.upper.get(b).is_some_and(|u| v > *u)
            });
            let Some(b) = violated else {
                return true;
            };
            let v = self.beta(b);
            let below = self.lower.get(&b).is_some_and(|l| v < *l);
            let target = if below {
                self.lower[&b]
            } else {
                self.upper[&b]
            };
            let row = self.rows[&b].clone();
            // Find a suitable non-basic variable to pivot with (Bland).
            let mut entering = None;
            let mut candidates: Vec<(VarId, Rational)> = row.into_iter().collect();
            candidates.sort_by_key(|(v, _)| *v);
            for (n, a) in candidates {
                let n_val = self.beta(n);
                let can_increase = match self.upper.get(&n) {
                    Some(u) => n_val < *u,
                    None => true,
                };
                let can_decrease = match self.lower.get(&n) {
                    Some(l) => n_val > *l,
                    None => true,
                };
                let ok = if below {
                    (a.is_positive() && can_increase) || (a.is_negative() && can_decrease)
                } else {
                    (a.is_positive() && can_decrease) || (a.is_negative() && can_increase)
                };
                if ok {
                    entering = Some(n);
                    break;
                }
            }
            match entering {
                Some(n) => self.pivot(b, n, target),
                None => return false,
            }
        }
        // Should not happen with Bland's rule; be conservative.
        true
    }

    fn model(&self, num_problem_vars: usize) -> BTreeMap<VarId, Rational> {
        (0..num_problem_vars).map(|v| (v, self.beta(v))).collect()
    }
}

/// One saved bound entry of the backtracking trail: the variable, which
/// bound was touched, and its previous value (`None` = was unbounded).
#[derive(Debug, Clone)]
struct BoundUndo {
    var: VarId,
    upper: bool,
    old: Option<Rational>,
}

/// An incremental LIA solver whose simplex tableau stays *warm* across
/// the theory checks of one DPLL(T) query.
///
/// The from-scratch [`LiaSolver`] rebuilds a tableau (and re-substitutes
/// every slack row) per check and clones the whole constraint vector per
/// branch-and-bound node. This solver instead keeps the tableau alive:
///
/// * **slack rows persist** — each distinct linear combination gets one
///   slack variable, registered on first use and reused by every later
///   check (both polarities of a comparison atom share the combination,
///   so one slack serves the atom for good);
/// * **bounds are transient** — every check (and every branch-and-bound
///   node) runs inside a push/pop frame over variable bounds. Popping
///   restores the saved bound entries and touches nothing else: rows are
///   basis-invariant representations of the same linear subspace, and a
///   non-basic β that satisfied the tighter bounds still satisfies the
///   restored looser ones, so `check()` only ever needs to repair *basic*
///   variables — exactly what it does lazily anyway;
/// * **branch and bound reuses the parent tableau** — a branch asserts
///   one bound on the fractional variable inside a fresh frame and
///   recurses; no constraint cloning, no re-substitution.
///
/// A check truncated by the wall-clock deadline **poisons** the tableau:
/// the next check rebuilds from scratch (the incremental analogue of the
/// "deadline-`Unknown`s are never cached" rule — a truncated search's
/// verdict reflects the budget, and its tableau state is not trusted
/// either).
#[derive(Debug, Clone)]
pub struct IncrementalLia {
    num_problem_vars: usize,
    simplex: Simplex,
    /// One slack variable per distinct linear combination.
    slacks: BTreeMap<BTreeMap<VarId, Rational>, VarId>,
    /// Undo trail of bound changes, unwound on pop.
    trail: Vec<BoundUndo>,
    /// Open frames: trail length at each push.
    frames: Vec<usize>,
    /// Maximum number of branch-and-bound nodes explored per check.
    pub branch_budget: usize,
    /// Wall-clock deadline, polled once per branch-and-bound node.
    /// Crossing it returns [`LiaResult::Unknown`] and poisons the tableau.
    pub deadline: Option<std::time::Instant>,
    poisoned: bool,
    /// Checks served since the last (re)build; the first check after a
    /// build is "cold", every later one is a warm start.
    checks_since_build: u64,
    warm_checks: u64,
    rebuilds: u64,
    /// Pivots spent by the cold first check after the last (re)build —
    /// the per-check cost a from-scratch solver would pay every time.
    cold_pivots: u64,
    pivots_saved: u64,
}

impl IncrementalLia {
    /// Creates a warm solver for problems over `num_problem_vars`
    /// arithmetic variables (ids `0..num_problem_vars`).
    pub fn new(num_problem_vars: usize) -> IncrementalLia {
        IncrementalLia {
            num_problem_vars,
            simplex: Simplex::new(num_problem_vars),
            slacks: BTreeMap::new(),
            trail: Vec::new(),
            frames: Vec::new(),
            branch_budget: 200,
            deadline: None,
            poisoned: false,
            checks_since_build: 0,
            warm_checks: 0,
            rebuilds: 0,
            cold_pivots: 0,
            pivots_saved: 0,
        }
    }

    /// Checks served by an already-built tableau (every check after the
    /// first since the last rebuild).
    pub fn warm_checks(&self) -> u64 {
        self.warm_checks
    }

    /// Times the tableau was rebuilt from scratch (after poisoning).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Estimated pivots saved by warm starts: for each warm check, the
    /// cold first check's pivot count minus the warm check's, clamped at
    /// zero. An estimate — the cold baseline is this query's own first
    /// solve, not a per-check from-scratch rerun.
    pub fn pivots_saved(&self) -> u64 {
        self.pivots_saved
    }

    /// True when the last check was truncated by the deadline and the
    /// next check will rebuild the tableau.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Marks the tableau as untrusted; the next check rebuilds it.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    fn rebuild(&mut self) {
        self.simplex = Simplex::new(self.num_problem_vars);
        self.slacks.clear();
        self.trail.clear();
        self.frames.clear();
        self.poisoned = false;
        self.checks_since_build = 0;
        self.rebuilds += 1;
    }

    fn push(&mut self) {
        self.frames.push(self.trail.len());
    }

    fn pop(&mut self) {
        let mark = self.frames.pop().expect("pop without matching push");
        while self.trail.len() > mark {
            let undo = self.trail.pop().unwrap();
            let map = if undo.upper {
                &mut self.simplex.upper
            } else {
                &mut self.simplex.lower
            };
            match undo.old {
                Some(c) => {
                    map.insert(undo.var, c);
                }
                None => {
                    map.remove(&undo.var);
                }
            }
        }
    }

    /// Pops every frame opened after `depth` (defensive unwinding for
    /// early returns out of the branch-and-bound recursion).
    fn pop_to(&mut self, depth: usize) {
        while self.frames.len() > depth {
            self.pop();
        }
    }

    fn assert_upper(&mut self, v: VarId, c: Rational) -> bool {
        self.trail.push(BoundUndo {
            var: v,
            upper: true,
            old: self.simplex.upper.get(&v).copied(),
        });
        self.simplex.assert_upper(v, c)
    }

    fn assert_lower(&mut self, v: VarId, c: Rational) -> bool {
        self.trail.push(BoundUndo {
            var: v,
            upper: false,
            old: self.simplex.lower.get(&v).copied(),
        });
        self.simplex.assert_lower(v, c)
    }

    /// The slack variable standing for this linear combination,
    /// registering it (one row substitution, once ever) on first use.
    fn slack_for(&mut self, combo: &BTreeMap<VarId, Rational>) -> VarId {
        if let Some(&s) = self.slacks.get(combo) {
            return s;
        }
        let s = self.simplex.add_slack(combo);
        self.slacks.insert(combo.clone(), s);
        s
    }

    /// Checks a conjunction of constraints against the warm tableau.
    /// The tableau's *bounds* are restored before returning whatever the
    /// verdict; its rows, basis and assignment persist (that is the
    /// warmth). Sound for any sequence of checks because no bound
    /// outlives its check's frame.
    pub fn check(&mut self, constraints: &[Constraint]) -> LiaResult {
        if self.poisoned {
            self.rebuild();
        }
        if self.checks_since_build > 0 {
            self.warm_checks += 1;
        }
        self.checks_since_build += 1;
        let pivots_before = self.simplex.pivots;
        let depth = self.frames.len();
        self.push();
        let result = self.check_in_frame(constraints);
        self.pop_to(depth);
        if matches!(result, LiaResult::Unknown) && self.deadline_passed() {
            // Deadline-truncated: the verdict reflects the budget, and
            // the tableau is not trusted either (the incremental
            // extension of "deadline-Unknowns are never cached").
            self.poisoned = true;
        }
        let spent = self.simplex.pivots - pivots_before;
        if self.checks_since_build == 1 {
            self.cold_pivots = spent;
        } else {
            self.pivots_saved += self.cold_pivots.saturating_sub(spent);
        }
        result
    }

    fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| std::time::Instant::now() > d)
    }

    fn check_in_frame(&mut self, constraints: &[Constraint]) -> LiaResult {
        let empty = BTreeMap::new();
        for c in constraints {
            if c.expr.is_constant() && !c.holds(&empty) {
                return LiaResult::Unsat;
            }
        }
        for c in constraints.iter().filter(|c| !c.expr.is_constant()) {
            let s = self.slack_for(&c.expr.coeffs);
            // expr ⋈ 0  ⟺  Σ aᵢxᵢ ⋈ -constant
            let bound = -c.expr.constant;
            let ok = match c.rel {
                Rel::Le => self.assert_upper(s, bound),
                Rel::Ge => self.assert_lower(s, bound),
                Rel::Eq => self.assert_upper(s, bound) && self.assert_lower(s, bound),
            };
            if !ok {
                return LiaResult::Unsat;
            }
        }
        let mut budget = self.branch_budget;
        let result = self.solve_rec(&mut budget);
        if let LiaResult::Sat(model) = &result {
            debug_assert!(
                constraints.iter().all(|c| c.holds(model)),
                "warm tableau produced a non-model"
            );
        }
        result
    }

    /// Feasibility plus branch-and-bound over the current bound frame.
    fn solve_rec(&mut self, budget: &mut usize) -> LiaResult {
        if self.deadline_passed() {
            return LiaResult::Unknown;
        }
        if !self.simplex.check() {
            return LiaResult::Unsat;
        }
        let model = self.simplex.model(self.num_problem_vars);
        let fractional = model.iter().find(|(_, v)| !v.is_integer());
        let Some((&v, &val)) = fractional else {
            return LiaResult::Sat(model);
        };
        if *budget == 0 {
            return LiaResult::Unknown;
        }
        *budget -= 1;
        // Left branch: v ≤ floor(val), on the same tableau.
        self.push();
        let floor = Rational::new(val.floor(), 1);
        let left = if self.assert_upper(v, floor) {
            self.solve_rec(budget)
        } else {
            LiaResult::Unsat
        };
        self.pop();
        match left {
            LiaResult::Sat(m) => return LiaResult::Sat(m),
            LiaResult::Unknown => return LiaResult::Unknown,
            LiaResult::Unsat => {}
        }
        // Right branch: v ≥ ceil(val).
        self.push();
        let ceil = Rational::new(val.ceil(), 1);
        let right = if self.assert_lower(v, ceil) {
            self.solve_rec(budget)
        } else {
            LiaResult::Unsat
        };
        self.pop();
        right
    }
}

/// Decides satisfiability of a conjunction of linear constraints over the
/// integers.
#[derive(Debug, Clone, Default)]
pub struct LiaSolver {
    /// Maximum number of branch-and-bound nodes explored before giving up.
    pub branch_budget: usize,
    /// Wall-clock deadline: checked once per branch-and-bound node (each
    /// node is one simplex solve, the natural polling granularity), so a
    /// single `check` call can overshoot a synthesis budget by at most
    /// one simplex solve instead of a whole 200-node search tree.
    /// Crossing it returns [`LiaResult::Unknown`]; the caller must treat
    /// that as budget exhaustion (and never cache it as a verdict).
    pub deadline: Option<std::time::Instant>,
}

impl LiaSolver {
    /// Creates a solver with the default branch-and-bound budget.
    pub fn new() -> LiaSolver {
        LiaSolver {
            branch_budget: 200,
            deadline: None,
        }
    }

    /// Checks a conjunction of constraints; `num_vars` is the number of
    /// problem variables (ids `0..num_vars`).
    ///
    /// One-shot: builds a fresh [`IncrementalLia`] and discards it. The
    /// from-scratch baseline the `without_incremental_lia` ablation runs
    /// against, and the entry point for callers without a warm tableau.
    pub fn check(&self, num_vars: usize, constraints: &[Constraint]) -> LiaResult {
        let mut inc = IncrementalLia::new(num_vars);
        inc.branch_budget = self.branch_budget;
        inc.deadline = self.deadline;
        inc.check(constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: VarId) -> LinExpr {
        LinExpr::variable(v)
    }

    fn num(n: i64) -> LinExpr {
        LinExpr::constant(Rational::from_int(n))
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let solver = LiaSolver::new();
        assert!(matches!(solver.check(0, &[]), LiaResult::Sat(_)));
        let c = Constraint::le(num(1), num(0));
        assert_eq!(solver.check(0, &[c]), LiaResult::Unsat);
    }

    #[test]
    fn simple_bounds() {
        let solver = LiaSolver::new();
        // x >= 1 ∧ x <= 3
        let cs = vec![
            Constraint::ge(var(0), num(1)),
            Constraint::le(var(0), num(3)),
        ];
        match solver.check(1, &cs) {
            LiaResult::Sat(m) => {
                let x = m[&0];
                assert!(x >= Rational::from_int(1) && x <= Rational::from_int(3));
                assert!(x.is_integer());
            }
            other => panic!("expected sat, got {other:?}"),
        }
        // x >= 4 ∧ x <= 3 is unsat
        let cs = vec![
            Constraint::ge(var(0), num(4)),
            Constraint::le(var(0), num(3)),
        ];
        assert_eq!(solver.check(1, &cs), LiaResult::Unsat);
    }

    #[test]
    fn combination_of_constraints() {
        let solver = LiaSolver::new();
        // x + y <= 5 ∧ x >= 3 ∧ y >= 3 is unsat
        let cs = vec![
            Constraint::le(var(0).plus(&var(1)), num(5)),
            Constraint::ge(var(0), num(3)),
            Constraint::ge(var(1), num(3)),
        ];
        assert_eq!(solver.check(2, &cs), LiaResult::Unsat);
        // x + y <= 5 ∧ x >= 3 ∧ y >= 2 is sat
        let cs = vec![
            Constraint::le(var(0).plus(&var(1)), num(5)),
            Constraint::ge(var(0), num(3)),
            Constraint::ge(var(1), num(2)),
        ];
        assert!(matches!(solver.check(2, &cs), LiaResult::Sat(_)));
    }

    #[test]
    fn equalities_chain() {
        let solver = LiaSolver::new();
        // len = n ∧ n = 0 ∧ len >= 1  — the replicate-style contradiction
        let cs = vec![
            Constraint::eq(var(0), var(1)),
            Constraint::eq(var(1), num(0)),
            Constraint::ge(var(0), num(1)),
        ];
        assert_eq!(solver.check(2, &cs), LiaResult::Unsat);
    }

    #[test]
    fn integrality_matters() {
        let solver = LiaSolver::new();
        // 2x = 1 has a rational solution but no integer one.
        let cs = vec![Constraint::eq(var(0).scaled(Rational::from_int(2)), num(1))];
        assert_eq!(solver.check(1, &cs), LiaResult::Unsat);
        // 2x = 4 is fine.
        let cs = vec![Constraint::eq(var(0).scaled(Rational::from_int(2)), num(4))];
        assert!(matches!(solver.check(1, &cs), LiaResult::Sat(_)));
    }

    #[test]
    fn strict_inequalities_over_integers() {
        let solver = LiaSolver::new();
        // x < y ∧ y < x + 2  ⇒  y = x + 1 (sat)
        let cs = vec![
            Constraint::lt_int(var(0), var(1)),
            Constraint::lt_int(var(1), var(0).plus(&num(2))),
        ];
        match solver.check(2, &cs) {
            LiaResult::Sat(m) => {
                assert_eq!(m[&1], m[&0] + Rational::ONE);
            }
            other => panic!("expected sat, got {other:?}"),
        }
        // x < y ∧ y < x + 1 is unsat over integers.
        let cs = vec![
            Constraint::lt_int(var(0), var(1)),
            Constraint::lt_int(var(1), var(0).plus(&num(1))),
        ];
        assert_eq!(solver.check(2, &cs), LiaResult::Unsat);
    }

    #[test]
    fn unbounded_problems_are_sat() {
        let solver = LiaSolver::new();
        let cs = vec![Constraint::ge(var(0).minus(&var(1)), num(10))];
        assert!(matches!(solver.check(2, &cs), LiaResult::Sat(_)));
    }

    #[test]
    fn larger_system_with_pivoting() {
        let solver = LiaSolver::new();
        // x + y + z = 10, x - y >= 2, z >= 3, y >= 1  → sat
        let cs = vec![
            Constraint::eq(var(0).plus(&var(1)).plus(&var(2)), num(10)),
            Constraint::ge(var(0).minus(&var(1)), num(2)),
            Constraint::ge(var(2), num(3)),
            Constraint::ge(var(1), num(1)),
        ];
        match solver.check(3, &cs) {
            LiaResult::Sat(m) => {
                for c in &cs {
                    assert!(c.holds(&m), "violated {c:?} by {m:?}");
                }
            }
            other => panic!("expected sat, got {other:?}"),
        }
        // Tighten until unsat: x + y + z = 10, x - y >= 2, z >= 6, y >= 2 → x>=4, sum >= 12
        let cs = vec![
            Constraint::eq(var(0).plus(&var(1)).plus(&var(2)), num(10)),
            Constraint::ge(var(0).minus(&var(1)), num(2)),
            Constraint::ge(var(2), num(6)),
            Constraint::ge(var(1), num(2)),
        ];
        assert_eq!(solver.check(3, &cs), LiaResult::Unsat);
    }

    #[test]
    fn warm_tableau_answers_a_sequence_of_checks() {
        // The DPLL(T) usage pattern: many near-identical checks over the
        // same atoms against one tableau, verdicts matching from-scratch.
        let mut inc = IncrementalLia::new(2);
        let scratch = LiaSolver::new();
        let families: Vec<Vec<Constraint>> = vec![
            vec![
                Constraint::le(var(0).plus(&var(1)), num(5)),
                Constraint::ge(var(0), num(3)),
                Constraint::ge(var(1), num(3)),
            ],
            vec![
                Constraint::le(var(0).plus(&var(1)), num(5)),
                Constraint::ge(var(0), num(3)),
                Constraint::ge(var(1), num(2)),
            ],
            vec![
                Constraint::le(var(0).plus(&var(1)), num(5)),
                Constraint::ge(var(0), num(6)),
            ],
            vec![
                Constraint::eq(var(0), var(1)),
                Constraint::ge(var(0), num(1)),
                Constraint::le(var(1), num(0)),
            ],
            vec![Constraint::ge(var(0).minus(&var(1)), num(10))],
        ];
        for cs in &families {
            let warm = inc.check(cs);
            let cold = scratch.check(2, cs);
            assert_eq!(
                matches!(warm, LiaResult::Unsat),
                matches!(cold, LiaResult::Unsat),
                "verdict divergence on {cs:?}: warm {warm:?} vs cold {cold:?}"
            );
            if let LiaResult::Sat(m) = warm {
                assert!(cs.iter().all(|c| {
                    let v = c.expr.eval(&m);
                    match c.rel {
                        Rel::Le => v <= Rational::ZERO,
                        Rel::Eq => v.is_zero(),
                        Rel::Ge => v >= Rational::ZERO,
                    }
                }));
            }
        }
        assert_eq!(inc.warm_checks(), families.len() as u64 - 1);
        assert_eq!(inc.rebuilds(), 0);
    }

    #[test]
    fn popped_bounds_never_leak_into_the_next_check() {
        let mut inc = IncrementalLia::new(1);
        // x ≤ 3 is sat…
        assert!(matches!(
            inc.check(&[Constraint::le(var(0), num(3))]),
            LiaResult::Sat(_)
        ));
        // …and must not constrain the next check: x ≥ 4 alone is sat.
        assert!(matches!(
            inc.check(&[Constraint::ge(var(0), num(4))]),
            LiaResult::Sat(_)
        ));
        // An unsat check's bounds must not leak either.
        assert_eq!(
            inc.check(&[
                Constraint::ge(var(0), num(4)),
                Constraint::le(var(0), num(3)),
            ]),
            LiaResult::Unsat
        );
        assert!(matches!(
            inc.check(&[Constraint::ge(var(0), num(4))]),
            LiaResult::Sat(_)
        ));
    }

    #[test]
    fn warm_branch_and_bound_restores_branch_bounds() {
        let mut inc = IncrementalLia::new(1);
        // 2x = 1: rational-feasible, integer-infeasible — both branches
        // of the branch-and-bound run and both must unwind cleanly.
        let cs = vec![Constraint::eq(var(0).scaled(Rational::from_int(2)), num(1))];
        assert_eq!(inc.check(&cs), LiaResult::Unsat);
        // The tableau is still usable and unconstrained afterwards.
        let cs = vec![Constraint::eq(var(0).scaled(Rational::from_int(2)), num(4))];
        match inc.check(&cs) {
            LiaResult::Sat(m) => assert_eq!(m[&0], Rational::from_int(2)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn deadline_truncated_check_poisons_the_warm_tableau() {
        let mut inc = IncrementalLia::new(1);
        // Warm the tableau with a normal check.
        assert!(matches!(
            inc.check(&[Constraint::ge(var(0), num(1))]),
            LiaResult::Sat(_)
        ));
        assert!(!inc.is_poisoned());
        // A check that crosses the deadline must answer Unknown and mark
        // the tableau untrusted (the regression PR 5's "deadline-Unknowns
        // are never cached" rule extends to tableau state).
        inc.deadline = Some(std::time::Instant::now() - std::time::Duration::from_secs(1));
        assert_eq!(
            inc.check(&[Constraint::ge(var(0), num(1))]),
            LiaResult::Unknown
        );
        assert!(inc.is_poisoned());
        // With the deadline lifted, the next check rebuilds and answers
        // correctly — in both directions.
        inc.deadline = None;
        assert_eq!(
            inc.check(&[
                Constraint::ge(var(0), num(4)),
                Constraint::le(var(0), num(3)),
            ]),
            LiaResult::Unsat
        );
        assert!(!inc.is_poisoned());
        assert_eq!(inc.rebuilds(), 1);
        assert!(matches!(
            inc.check(&[Constraint::le(var(0), num(0))]),
            LiaResult::Sat(_)
        ));
    }
}
