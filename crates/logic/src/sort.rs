//! Sorts of refinement terms.
//!
//! A [`Sort`] classifies refinement terms (Fig. 2 of the paper). Sorts are
//! kept deliberately simple: the refinement logic is quantifier-free and
//! each program type maps to exactly one sort (`Int`/`Bool` map to
//! themselves, datatypes map to an uninterpreted datatype sort, and type
//! variables map to uninterpreted sorts). Sets are used to model measures
//! such as `elems` and `keys`.

use std::fmt;

/// The sort of a refinement term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sort {
    /// Boolean sort `B`.
    Bool,
    /// Integer sort `Z`.
    Int,
    /// Finite sets of elements of the given sort (models measures such as
    /// `elems`, `keys`; the paper uses the array theory for the same
    /// purpose).
    Set(Box<Sort>),
    /// An uninterpreted datatype sort, e.g. `List a` or `BST Int`.
    Data(String, Vec<Sort>),
    /// An uninterpreted sort corresponding to a type variable `α`.
    Var(String),
    /// A placeholder sort used transiently while shapes are still being
    /// inferred (incremental unification may leave argument sorts open).
    Unknown,
}

impl Sort {
    /// Convenience constructor for a set sort.
    pub fn set(elem: Sort) -> Sort {
        Sort::Set(Box::new(elem))
    }

    /// Convenience constructor for a datatype sort.
    pub fn data(name: impl Into<String>, args: Vec<Sort>) -> Sort {
        Sort::Data(name.into(), args)
    }

    /// Convenience constructor for an uninterpreted (type-variable) sort.
    pub fn var(name: impl Into<String>) -> Sort {
        Sort::Var(name.into())
    }

    /// Returns the element sort of a set sort, if this is one.
    pub fn elem_sort(&self) -> Option<&Sort> {
        match self {
            Sort::Set(e) => Some(e),
            _ => None,
        }
    }

    /// True if this sort admits a linear order in the refinement logic
    /// (integers, and uninterpreted sorts, which are modelled as integers
    /// by the solver so that generic comparisons on `α` are meaningful).
    pub fn is_ordered(&self) -> bool {
        matches!(self, Sort::Int | Sort::Var(_))
    }

    /// True if two sorts can be considered equal for the purpose of
    /// well-sortedness checking, treating [`Sort::Unknown`] as a wildcard.
    pub fn compatible(&self, other: &Sort) -> bool {
        match (self, other) {
            (Sort::Unknown, _) | (_, Sort::Unknown) => true,
            (Sort::Set(a), Sort::Set(b)) => a.compatible(b),
            (Sort::Data(n1, a1), Sort::Data(n2, a2)) => {
                n1 == n2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(x, y)| x.compatible(y))
            }
            _ => self == other,
        }
    }

    /// Applies a sort substitution mapping uninterpreted (type-variable)
    /// sort names to sorts.
    pub fn substitute(&self, map: &std::collections::BTreeMap<String, Sort>) -> Sort {
        match self {
            Sort::Var(n) => map.get(n).cloned().unwrap_or_else(|| self.clone()),
            Sort::Set(e) => Sort::set(e.substitute(map)),
            Sort::Data(n, args) => {
                Sort::Data(n.clone(), args.iter().map(|a| a.substitute(map)).collect())
            }
            _ => self.clone(),
        }
    }

    /// Collects the names of uninterpreted sort variables occurring in
    /// this sort.
    pub fn sort_vars(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Sort::Var(n) => {
                out.insert(n.clone());
            }
            Sort::Set(e) => e.sort_vars(out),
            Sort::Data(_, args) => {
                for a in args {
                    a.sort_vars(out);
                }
            }
            _ => {}
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::Int => write!(f, "Int"),
            Sort::Set(e) => write!(f, "Set {e}"),
            Sort::Data(n, args) => {
                write!(f, "{n}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            Sort::Var(n) => write!(f, "{n}"),
            Sort::Unknown => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_structure() {
        let s = Sort::data("List", vec![Sort::set(Sort::Int)]);
        assert_eq!(s.to_string(), "List Set Int");
    }

    #[test]
    fn compatibility_treats_unknown_as_wildcard() {
        assert!(Sort::Unknown.compatible(&Sort::Int));
        assert!(Sort::set(Sort::Unknown).compatible(&Sort::set(Sort::Bool)));
        assert!(!Sort::Int.compatible(&Sort::Bool));
    }

    #[test]
    fn substitution_replaces_sort_vars() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("a".to_string(), Sort::Int);
        let s = Sort::data("List", vec![Sort::var("a"), Sort::var("b")]);
        assert_eq!(
            s.substitute(&map),
            Sort::data("List", vec![Sort::Int, Sort::var("b")])
        );
    }

    #[test]
    fn ordered_sorts() {
        assert!(Sort::Int.is_ordered());
        assert!(Sort::var("a").is_ordered());
        assert!(!Sort::Bool.is_ordered());
        assert!(!Sort::set(Sort::Int).is_ordered());
    }
}
