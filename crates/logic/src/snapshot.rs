//! Lossless, whitespace-free wire encoding of [`Term`]s and [`Sort`]s.
//!
//! Resident synthesis sessions persist their validity-cache entries to
//! disk so a future process (or a `synquid serve` fleet node) can boot
//! hot. That needs an encoding of cache keys — normalized refinement
//! terms — that round-trips *exactly*: the pretty-printer is ambiguous
//! (it drops sorts and parentheses), so this module defines a compact
//! prefix encoding instead. Strings are length-prefixed (netstring
//! style), so no escaping is needed; whitespace can appear in the
//! encoded stream only inside an embedded identifier (which the spec
//! grammar never produces — line-oriented snapshot writers still guard
//! against it).
//!
//! The encoding is versioned by the snapshot container (see the engine's
//! session module); within one version it is a pure bijection:
//! `decode_term(&encode_term(t)) == Ok(t)` for every term.

use crate::sort::Sort;
use crate::term::{BinOp, Term, UnOp};
use std::fmt::Write as _;

/// Encodes a term as a single whitespace-free token string.
pub fn encode_term(term: &Term) -> String {
    let mut out = String::new();
    write_term(term, &mut out);
    out
}

/// Decodes a term encoded by [`encode_term`]. Fails (with a brief
/// message) on any malformed or trailing input — snapshot loaders treat
/// any failure as "stale snapshot, start cold".
pub fn decode_term(input: &str) -> Result<Term, String> {
    let mut cursor = Cursor { input, pos: 0 };
    let term = cursor.term()?;
    if cursor.pos != input.len() {
        return Err(format!("trailing input at byte {}", cursor.pos));
    }
    Ok(term)
}

fn write_term(term: &Term, out: &mut String) {
    match term {
        Term::IntLit(n) => {
            let _ = write!(out, "i{n}.");
        }
        Term::BoolLit(b) => out.push_str(if *b { "t." } else { "f." }),
        Term::SetLit(elem, items) => {
            let _ = write!(out, "s{}.", items.len());
            write_sort(elem, out);
            for item in items {
                write_term(item, out);
            }
        }
        Term::Var(name, sort) => {
            out.push('v');
            write_str(name, out);
            write_sort(sort, out);
        }
        Term::Unknown(id, pending) => {
            let _ = write!(out, "u{id}.{}.", pending.len());
            for (k, v) in pending {
                write_str(k, out);
                write_term(v, out);
            }
        }
        Term::Unary(op, t) => {
            out.push('1');
            out.push(match op {
                UnOp::Neg => 'n',
                UnOp::Not => '!',
            });
            write_term(t, out);
        }
        Term::Binary(op, a, b) => {
            out.push('2');
            out.push(bin_tag(*op));
            write_term(a, out);
            write_term(b, out);
        }
        Term::Ite(c, t, e) => {
            out.push('?');
            write_term(c, out);
            write_term(t, out);
            write_term(e, out);
        }
        Term::App(name, args, sort) => {
            out.push('a');
            write_str(name, out);
            let _ = write!(out, "{}.", args.len());
            for arg in args {
                write_term(arg, out);
            }
            write_sort(sort, out);
        }
    }
}

fn write_sort(sort: &Sort, out: &mut String) {
    match sort {
        Sort::Bool => out.push('B'),
        Sort::Int => out.push('Z'),
        Sort::Set(elem) => {
            out.push('S');
            write_sort(elem, out);
        }
        Sort::Data(name, args) => {
            out.push('D');
            write_str(name, out);
            let _ = write!(out, "{}.", args.len());
            for arg in args {
                write_sort(arg, out);
            }
        }
        Sort::Var(name) => {
            out.push('V');
            write_str(name, out);
        }
        Sort::Unknown => out.push('U'),
    }
}

fn write_str(s: &str, out: &mut String) {
    let _ = write!(out, "{}:{s}", s.len());
}

fn bin_tag(op: BinOp) -> char {
    match op {
        BinOp::Plus => '+',
        BinOp::Minus => '-',
        BinOp::Times => '*',
        BinOp::Eq => '=',
        BinOp::Neq => '#',
        BinOp::Lt => '<',
        BinOp::Le => 'l',
        BinOp::Gt => '}',
        BinOp::Ge => 'g',
        BinOp::And => '&',
        BinOp::Or => '|',
        BinOp::Implies => 'i',
        BinOp::Iff => '~',
        BinOp::Union => 'u',
        BinOp::Intersect => 'n',
        BinOp::Diff => 'd',
        BinOp::Member => 'm',
        BinOp::Subset => 'c',
    }
}

fn bin_of_tag(tag: char) -> Option<BinOp> {
    Some(match tag {
        '+' => BinOp::Plus,
        '-' => BinOp::Minus,
        '*' => BinOp::Times,
        '=' => BinOp::Eq,
        '#' => BinOp::Neq,
        '<' => BinOp::Lt,
        'l' => BinOp::Le,
        '}' => BinOp::Gt,
        'g' => BinOp::Ge,
        '&' => BinOp::And,
        '|' => BinOp::Or,
        'i' => BinOp::Implies,
        '~' => BinOp::Iff,
        'u' => BinOp::Union,
        'n' => BinOp::Intersect,
        'd' => BinOp::Diff,
        'm' => BinOp::Member,
        'c' => BinOp::Subset,
        _ => return None,
    })
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl Cursor<'_> {
    fn byte(&mut self) -> Result<char, String> {
        let c = self.input[self.pos..]
            .chars()
            .next()
            .ok_or_else(|| "unexpected end of input".to_string())?;
        self.pos += c.len_utf8();
        Ok(c)
    }

    /// Reads digits (with optional leading `-`) up to a `.` terminator.
    fn int(&mut self) -> Result<i64, String> {
        let end = self.input[self.pos..]
            .find('.')
            .map(|i| self.pos + i)
            .ok_or_else(|| format!("unterminated integer at byte {}", self.pos))?;
        let parsed = self.input[self.pos..end]
            .parse::<i64>()
            .map_err(|e| format!("bad integer at byte {}: {e}", self.pos))?;
        self.pos = end + 1;
        Ok(parsed)
    }

    fn count(&mut self) -> Result<usize, String> {
        usize::try_from(self.int()?).map_err(|_| "negative count".to_string())
    }

    /// Reads a `<len>:<bytes>` netstring.
    fn string(&mut self) -> Result<String, String> {
        let colon = self.input[self.pos..]
            .find(':')
            .map(|i| self.pos + i)
            .ok_or_else(|| format!("unterminated string length at byte {}", self.pos))?;
        let len: usize = self.input[self.pos..colon]
            .parse()
            .map_err(|e| format!("bad string length at byte {}: {e}", self.pos))?;
        let start = colon + 1;
        let end = start.checked_add(len).filter(|&e| e <= self.input.len());
        let end = end.ok_or_else(|| format!("string overruns input at byte {start}"))?;
        let s = self
            .input
            .get(start..end)
            .ok_or_else(|| format!("string splits a UTF-8 character at byte {start}"))?;
        self.pos = end;
        Ok(s.to_string())
    }

    fn term(&mut self) -> Result<Term, String> {
        match self.byte()? {
            'i' => Ok(Term::IntLit(self.int()?)),
            't' => {
                self.expect('.')?;
                Ok(Term::BoolLit(true))
            }
            'f' => {
                self.expect('.')?;
                Ok(Term::BoolLit(false))
            }
            's' => {
                let n = self.count()?;
                let elem = self.sort()?;
                let items = (0..n).map(|_| self.term()).collect::<Result<_, _>>()?;
                Ok(Term::SetLit(elem, items))
            }
            'v' => Ok(Term::Var(self.string()?, self.sort()?)),
            'u' => {
                let id = u32::try_from(self.int()?).map_err(|_| "bad unknown id".to_string())?;
                let n = self.count()?;
                let mut pending = crate::Substitution::new();
                for _ in 0..n {
                    let k = self.string()?;
                    let v = self.term()?;
                    pending.insert(k, v);
                }
                Ok(Term::Unknown(id, pending))
            }
            '1' => {
                let op = match self.byte()? {
                    'n' => UnOp::Neg,
                    '!' => UnOp::Not,
                    c => return Err(format!("unknown unary op tag {c:?}")),
                };
                Ok(Term::Unary(op, Box::new(self.term()?)))
            }
            '2' => {
                let tag = self.byte()?;
                let op = bin_of_tag(tag).ok_or_else(|| format!("unknown binary op tag {tag:?}"))?;
                Ok(Term::Binary(
                    op,
                    Box::new(self.term()?),
                    Box::new(self.term()?),
                ))
            }
            '?' => Ok(Term::Ite(
                Box::new(self.term()?),
                Box::new(self.term()?),
                Box::new(self.term()?),
            )),
            'a' => {
                let name = self.string()?;
                let n = self.count()?;
                let args = (0..n).map(|_| self.term()).collect::<Result<_, _>>()?;
                Ok(Term::App(name, args, self.sort()?))
            }
            c => Err(format!("unknown term tag {c:?}")),
        }
    }

    fn sort(&mut self) -> Result<Sort, String> {
        match self.byte()? {
            'B' => Ok(Sort::Bool),
            'Z' => Ok(Sort::Int),
            'S' => Ok(Sort::set(self.sort()?)),
            'D' => {
                let name = self.string()?;
                let n = self.count()?;
                let args = (0..n).map(|_| self.sort()).collect::<Result<_, _>>()?;
                Ok(Sort::Data(name, args))
            }
            'V' => Ok(Sort::Var(self.string()?)),
            'U' => Ok(Sort::Unknown),
            c => Err(format!("unknown sort tag {c:?}")),
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        let got = self.byte()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected {want:?}, found {got:?}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Substitution;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }

    #[test]
    fn round_trips_every_constructor() {
        let list = Sort::data("List", vec![Sort::var("a")]);
        let mut pending = Substitution::new();
        pending.insert("x".into(), Term::int(1));
        pending.insert("y: odd name".into(), Term::tt());
        let terms = [
            Term::int(-7),
            Term::tt(),
            Term::ff(),
            Term::empty_set(Sort::Int),
            Term::singleton(Sort::var("a"), Term::var("e", Sort::var("a"))),
            Term::Unknown(3, pending),
            Term::app("len", vec![Term::value_var(list.clone())], Sort::Int).eq(x()),
            Term::ite(x().le(Term::int(0)), x(), x().neg()),
            x().lt(Term::int(2))
                .and(x().ge(Term::int(0)))
                .implies(x().neq(Term::int(9))),
            Term::var("s", Sort::set(Sort::Unknown)),
        ];
        for term in terms {
            let encoded = encode_term(&term);
            assert_eq!(decode_term(&encoded), Ok(term.clone()), "via {encoded:?}");
        }
    }

    #[test]
    fn every_binop_round_trips() {
        use crate::term::BinOp;
        for op in [
            BinOp::Plus,
            BinOp::Minus,
            BinOp::Times,
            BinOp::Eq,
            BinOp::Neq,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
            BinOp::Implies,
            BinOp::Iff,
            BinOp::Union,
            BinOp::Intersect,
            BinOp::Diff,
            BinOp::Member,
            BinOp::Subset,
        ] {
            let term = Term::Binary(op, Box::new(x()), Box::new(x()));
            assert_eq!(decode_term(&encode_term(&term)), Ok(term));
        }
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "", "q", "i12", "v3:ab", "2+i1.", "i1.i2.", "s1.Z", "a1:f0.Q",
        ] {
            assert!(decode_term(bad).is_err(), "{bad:?} must not decode");
        }
    }
}
