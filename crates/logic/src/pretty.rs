//! Pretty-printing of refinement terms.
//!
//! The output follows the notation of the paper where practical: the value
//! variable prints as `ν`, set union as `+`, membership as `in`, and
//! predicate unknowns as `P<i>`.

use crate::term::{BinOp, Term, UnOp};
use std::fmt;

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "!"),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Plus => "+",
            BinOp::Minus => "-",
            BinOp::Times => "*",
            BinOp::Eq => "==",
            BinOp::Neq => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Implies => "==>",
            BinOp::Iff => "<==>",
            BinOp::Union => "+",
            BinOp::Intersect => "*",
            BinOp::Diff => "\\",
            BinOp::Member => "in",
            BinOp::Subset => "<=",
        };
        write!(f, "{s}")
    }
}

fn needs_parens(t: &Term) -> bool {
    matches!(
        t,
        Term::Binary(_, _, _) | Term::Ite(_, _, _) | Term::App(_, _, _)
    )
}

fn fmt_atom(t: &Term, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if needs_parens(t) {
        write!(f, "({t})")
    } else {
        write!(f, "{t}")
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::IntLit(n) => write!(f, "{n}"),
            Term::BoolLit(b) => write!(f, "{b}"),
            Term::SetLit(_, elems) => {
                write!(f, "[")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Term::Var(name, _) => write!(f, "{name}"),
            Term::Unknown(id, subst) => {
                write!(f, "P{id}")?;
                if !subst.is_empty() {
                    write!(f, "[")?;
                    for (i, (k, v)) in subst.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{v}/{k}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            Term::Unary(op, t) => {
                write!(f, "{op}")?;
                fmt_atom(t, f)
            }
            Term::Binary(op, a, b) => {
                fmt_atom(a, f)?;
                write!(f, " {op} ")?;
                fmt_atom(b, f)
            }
            Term::Ite(c, t, e) => {
                write!(f, "if ")?;
                fmt_atom(c, f)?;
                write!(f, " then ")?;
                fmt_atom(t, f)?;
                write!(f, " else ")?;
                fmt_atom(e, f)
            }
            Term::App(name, args, _) => {
                write!(f, "{name}")?;
                for a in args {
                    write!(f, " ")?;
                    fmt_atom(a, f)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sort, VALUE_VAR};

    #[test]
    fn value_var_prints_as_nu() {
        let t = Term::value_var(Sort::Int).ge(Term::int(0));
        assert_eq!(t.to_string(), format!("{VALUE_VAR} >= 0"));
    }

    #[test]
    fn measure_application_prints_with_parens_in_context() {
        let xs = Term::var("xs", Sort::data("List", vec![Sort::var("a")]));
        let t = Term::app("len", vec![xs], Sort::Int).eq(Term::int(0));
        assert_eq!(t.to_string(), "(len xs) == 0");
    }

    #[test]
    fn unknown_prints_with_pending_substitution() {
        let u = Term::unknown(2).substitute_value(&Term::var("x", Sort::Int));
        assert_eq!(u.to_string(), "P2[x/ν]");
    }

    #[test]
    fn set_literal_prints_brackets() {
        let t = Term::SetLit(Sort::Int, vec![Term::int(1), Term::int(2)]);
        assert_eq!(t.to_string(), "[1, 2]");
    }
}
