//! Refinement terms (the `ψ` of Fig. 2).
//!
//! A [`Term`] is a quantifier-free formula or expression of the refinement
//! logic: linear integer arithmetic, booleans, finite sets, applications of
//! uninterpreted functions (measures), and *predicate unknowns* `P_i` whose
//! valuations are discovered by the liquid fixpoint solver.

use crate::sort::Sort;
use crate::Substitution;
use std::collections::{BTreeMap, BTreeSet};

/// The name of the distinguished value variable `ν`.
pub const VALUE_VAR: &str = "ν";

/// Identifier of a predicate unknown `P_i`.
pub type UnknownId = u32;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// Binary operators of the refinement logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinOp {
    /// Integer addition.
    Plus,
    /// Integer subtraction.
    Minus,
    /// Integer multiplication (only by constants in well-formed liquid
    /// specifications, keeping the logic linear).
    Times,
    /// Equality (available at every sort).
    Eq,
    /// Disequality.
    Neq,
    /// Strict less-than (integers and ordered uninterpreted sorts).
    Lt,
    /// Less-than-or-equal.
    Le,
    /// Strict greater-than.
    Gt,
    /// Greater-than-or-equal.
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean implication.
    Implies,
    /// Boolean bi-implication.
    Iff,
    /// Set union.
    Union,
    /// Set intersection.
    Intersect,
    /// Set difference.
    Diff,
    /// Set membership (`elem ∈ set`).
    Member,
    /// Subset-or-equal.
    Subset,
}

impl BinOp {
    /// True for operators that produce a boolean.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Neq
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
                | BinOp::Implies
                | BinOp::Iff
                | BinOp::Member
                | BinOp::Subset
        )
    }
}

/// A refinement term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// Integer literal.
    IntLit(i64),
    /// Boolean literal.
    BoolLit(bool),
    /// Set literal `[e1, ..., en]`; the empty literal denotes `∅`.
    SetLit(Sort, Vec<Term>),
    /// A variable with its sort. The value variable `ν` is
    /// `Term::Var(VALUE_VAR, _)`.
    Var(String, Sort),
    /// A predicate unknown `P_i` with a pending substitution that is
    /// applied once a valuation is known.
    Unknown(UnknownId, Substitution),
    /// Unary operator application.
    Unary(UnOp, Box<Term>),
    /// Binary operator application.
    Binary(BinOp, Box<Term>, Box<Term>),
    /// If-then-else at any sort.
    Ite(Box<Term>, Box<Term>, Box<Term>),
    /// Application of an uninterpreted function (a *measure* such as
    /// `len`, `elems`, `keys`) with the given result sort.
    App(String, Vec<Term>, Sort),
}

impl Term {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// The boolean constant `true`.
    pub fn tt() -> Term {
        Term::BoolLit(true)
    }

    /// The boolean constant `false`.
    pub fn ff() -> Term {
        Term::BoolLit(false)
    }

    /// An integer literal.
    pub fn int(n: i64) -> Term {
        Term::IntLit(n)
    }

    /// A variable of the given sort.
    pub fn var(name: impl Into<String>, sort: Sort) -> Term {
        Term::Var(name.into(), sort)
    }

    /// The value variable `ν` at the given sort.
    pub fn value_var(sort: Sort) -> Term {
        Term::Var(VALUE_VAR.to_string(), sort)
    }

    /// An application of an uninterpreted function / measure.
    pub fn app(name: impl Into<String>, args: Vec<Term>, result: Sort) -> Term {
        Term::App(name.into(), args, result)
    }

    /// A predicate unknown with an empty pending substitution.
    pub fn unknown(id: UnknownId) -> Term {
        Term::Unknown(id, Substitution::new())
    }

    /// The empty set literal of the given element sort.
    pub fn empty_set(elem: Sort) -> Term {
        Term::SetLit(elem, vec![])
    }

    /// A singleton set literal.
    pub fn singleton(elem_sort: Sort, elem: Term) -> Term {
        Term::SetLit(elem_sort, vec![elem])
    }

    fn bin(op: BinOp, a: Term, b: Term) -> Term {
        Term::Binary(op, Box::new(a), Box::new(b))
    }

    /// `self + other`.
    pub fn plus(self, other: Term) -> Term {
        Term::bin(BinOp::Plus, self, other)
    }

    /// `self - other`.
    pub fn minus(self, other: Term) -> Term {
        Term::bin(BinOp::Minus, self, other)
    }

    /// `self * other`.
    pub fn times(self, other: Term) -> Term {
        Term::bin(BinOp::Times, self, other)
    }

    /// `self == other`.
    pub fn eq(self, other: Term) -> Term {
        Term::bin(BinOp::Eq, self, other)
    }

    /// `self != other`.
    pub fn neq(self, other: Term) -> Term {
        Term::bin(BinOp::Neq, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Term) -> Term {
        Term::bin(BinOp::Lt, self, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Term) -> Term {
        Term::bin(BinOp::Le, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Term) -> Term {
        Term::bin(BinOp::Gt, self, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Term) -> Term {
        Term::bin(BinOp::Ge, self, other)
    }

    /// Conjunction with lightweight simplification of boolean literals.
    pub fn and(self, other: Term) -> Term {
        match (&self, &other) {
            (Term::BoolLit(true), _) => other,
            (_, Term::BoolLit(true)) => self,
            (Term::BoolLit(false), _) | (_, Term::BoolLit(false)) => Term::ff(),
            _ => Term::bin(BinOp::And, self, other),
        }
    }

    /// Disjunction with lightweight simplification of boolean literals.
    pub fn or(self, other: Term) -> Term {
        match (&self, &other) {
            (Term::BoolLit(false), _) => other,
            (_, Term::BoolLit(false)) => self,
            (Term::BoolLit(true), _) | (_, Term::BoolLit(true)) => Term::tt(),
            _ => Term::bin(BinOp::Or, self, other),
        }
    }

    /// Implication with lightweight simplification of boolean literals.
    pub fn implies(self, other: Term) -> Term {
        match (&self, &other) {
            (Term::BoolLit(true), _) => other,
            (Term::BoolLit(false), _) => Term::tt(),
            (_, Term::BoolLit(true)) => Term::tt(),
            _ => Term::bin(BinOp::Implies, self, other),
        }
    }

    /// Bi-implication.
    pub fn iff(self, other: Term) -> Term {
        Term::bin(BinOp::Iff, self, other)
    }

    /// Boolean negation with double-negation elimination.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Term {
        match self {
            Term::BoolLit(b) => Term::BoolLit(!b),
            Term::Unary(UnOp::Not, inner) => *inner,
            t => Term::Unary(UnOp::Not, Box::new(t)),
        }
    }

    /// Integer negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Term {
        match self {
            Term::IntLit(n) => Term::IntLit(-n),
            t => Term::Unary(UnOp::Neg, Box::new(t)),
        }
    }

    /// Set union.
    pub fn union(self, other: Term) -> Term {
        Term::bin(BinOp::Union, self, other)
    }

    /// Set intersection.
    pub fn intersect(self, other: Term) -> Term {
        Term::bin(BinOp::Intersect, self, other)
    }

    /// Set difference.
    pub fn set_diff(self, other: Term) -> Term {
        Term::bin(BinOp::Diff, self, other)
    }

    /// Set membership `self ∈ other`.
    pub fn member(self, other: Term) -> Term {
        Term::bin(BinOp::Member, self, other)
    }

    /// Subset `self ⊆ other`.
    pub fn subset(self, other: Term) -> Term {
        Term::bin(BinOp::Subset, self, other)
    }

    /// If-then-else.
    pub fn ite(cond: Term, then: Term, els: Term) -> Term {
        Term::Ite(Box::new(cond), Box::new(then), Box::new(els))
    }

    /// Conjunction of an iterator of terms (`true` if empty).
    pub fn conjunction<I: IntoIterator<Item = Term>>(terms: I) -> Term {
        terms.into_iter().fold(Term::tt(), |acc, t| acc.and(t))
    }

    /// Disjunction of an iterator of terms (`false` if empty).
    pub fn disjunction<I: IntoIterator<Item = Term>>(terms: I) -> Term {
        terms.into_iter().fold(Term::ff(), |acc, t| acc.or(t))
    }

    // ---------------------------------------------------------------------
    // Queries
    // ---------------------------------------------------------------------

    /// True if the term is syntactically the literal `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Term::BoolLit(true))
    }

    /// True if the term is syntactically the literal `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, Term::BoolLit(false))
    }

    /// The sort of the term. Variables and applications carry their sorts;
    /// operators determine theirs structurally.
    pub fn sort(&self) -> Sort {
        match self {
            Term::IntLit(_) => Sort::Int,
            Term::BoolLit(_) => Sort::Bool,
            Term::SetLit(elem, _) => Sort::set(elem.clone()),
            Term::Var(_, s) => s.clone(),
            Term::Unknown(_, _) => Sort::Bool,
            Term::Unary(UnOp::Neg, _) => Sort::Int,
            Term::Unary(UnOp::Not, _) => Sort::Bool,
            Term::Binary(op, l, _) => {
                if op.is_predicate() {
                    Sort::Bool
                } else {
                    match op {
                        BinOp::Union | BinOp::Intersect | BinOp::Diff => l.sort(),
                        _ => Sort::Int,
                    }
                }
            }
            Term::Ite(_, t, _) => t.sort(),
            Term::App(_, _, s) => s.clone(),
        }
    }

    /// Free (program) variables of the term, together with their sorts.
    /// Pending substitutions inside unknowns contribute the free variables
    /// of their right-hand sides.
    pub fn free_vars(&self) -> BTreeMap<String, Sort> {
        let mut out = BTreeMap::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut BTreeMap<String, Sort>) {
        match self {
            Term::Var(name, sort) => {
                out.insert(name.clone(), sort.clone());
            }
            Term::Unknown(_, subst) => {
                for t in subst.values() {
                    t.collect_free_vars(out);
                }
            }
            Term::Unary(_, t) => t.collect_free_vars(out),
            Term::Binary(_, a, b) => {
                a.collect_free_vars(out);
                b.collect_free_vars(out);
            }
            Term::Ite(c, t, e) => {
                c.collect_free_vars(out);
                t.collect_free_vars(out);
                e.collect_free_vars(out);
            }
            Term::App(_, args, _) => {
                for a in args {
                    a.collect_free_vars(out);
                }
            }
            Term::SetLit(_, elems) => {
                for e in elems {
                    e.collect_free_vars(out);
                }
            }
            Term::IntLit(_) | Term::BoolLit(_) => {}
        }
    }

    /// Identifiers of all predicate unknowns occurring in the term.
    pub fn unknowns(&self) -> BTreeSet<UnknownId> {
        let mut out = BTreeSet::new();
        self.collect_unknowns(&mut out);
        out
    }

    fn collect_unknowns(&self, out: &mut BTreeSet<UnknownId>) {
        match self {
            Term::Unknown(id, _) => {
                out.insert(*id);
            }
            Term::Unary(_, t) => t.collect_unknowns(out),
            Term::Binary(_, a, b) => {
                a.collect_unknowns(out);
                b.collect_unknowns(out);
            }
            Term::Ite(c, t, e) => {
                c.collect_unknowns(out);
                t.collect_unknowns(out);
                e.collect_unknowns(out);
            }
            Term::App(_, args, _) | Term::SetLit(_, args) => {
                for a in args {
                    a.collect_unknowns(out);
                }
            }
            _ => {}
        }
    }

    /// True if the term contains any predicate unknowns.
    pub fn has_unknowns(&self) -> bool {
        !self.unknowns().is_empty()
    }

    /// Names of all measures (uninterpreted functions) applied in the term.
    pub fn measures(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.walk(&mut |t| {
            if let Term::App(name, _, _) = t {
                out.insert(name.clone());
            }
        });
        out
    }

    /// Visits every sub-term (including `self`) in pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Term)) {
        f(self);
        match self {
            Term::Unary(_, t) => t.walk(f),
            Term::Binary(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Term::Ite(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            Term::App(_, args, _) | Term::SetLit(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
    }

    // ---------------------------------------------------------------------
    // Substitution
    // ---------------------------------------------------------------------

    /// Applies a substitution of terms for variables. Substitution into a
    /// predicate unknown composes with its pending substitution (the new
    /// bindings are applied to the pending right-hand sides, and bindings
    /// for variables not yet mentioned are recorded).
    pub fn substitute(&self, subst: &Substitution) -> Term {
        if subst.is_empty() {
            return self.clone();
        }
        match self {
            Term::Var(name, _) => subst.get(name).cloned().unwrap_or_else(|| self.clone()),
            Term::Unknown(id, pending) => {
                let mut new_pending: Substitution = pending
                    .iter()
                    .map(|(k, v)| (k.clone(), v.substitute(subst)))
                    .collect();
                for (k, v) in subst {
                    new_pending.entry(k.clone()).or_insert_with(|| v.clone());
                }
                Term::Unknown(*id, new_pending)
            }
            Term::Unary(op, t) => Term::Unary(*op, Box::new(t.substitute(subst))),
            Term::Binary(op, a, b) => Term::Binary(
                *op,
                Box::new(a.substitute(subst)),
                Box::new(b.substitute(subst)),
            ),
            Term::Ite(c, t, e) => Term::Ite(
                Box::new(c.substitute(subst)),
                Box::new(t.substitute(subst)),
                Box::new(e.substitute(subst)),
            ),
            Term::App(name, args, s) => Term::App(
                name.clone(),
                args.iter().map(|a| a.substitute(subst)).collect(),
                s.clone(),
            ),
            Term::SetLit(s, elems) => Term::SetLit(
                s.clone(),
                elems.iter().map(|e| e.substitute(subst)).collect(),
            ),
            Term::IntLit(_) | Term::BoolLit(_) => self.clone(),
        }
    }

    /// Substitutes a single variable.
    pub fn substitute_var(&self, name: &str, replacement: &Term) -> Term {
        let mut subst = Substitution::new();
        subst.insert(name.to_string(), replacement.clone());
        self.substitute(&subst)
    }

    /// Substitutes the value variable `ν`.
    pub fn substitute_value(&self, replacement: &Term) -> Term {
        self.substitute_var(VALUE_VAR, replacement)
    }

    /// Applies a sort substitution (for type variables) to all sort
    /// annotations in the term.
    pub fn substitute_sorts(&self, map: &BTreeMap<String, Sort>) -> Term {
        match self {
            Term::Var(n, s) => Term::Var(n.clone(), s.substitute(map)),
            Term::SetLit(s, elems) => Term::SetLit(
                s.substitute(map),
                elems.iter().map(|e| e.substitute_sorts(map)).collect(),
            ),
            Term::Unknown(id, pending) => Term::Unknown(
                *id,
                pending
                    .iter()
                    .map(|(k, v)| (k.clone(), v.substitute_sorts(map)))
                    .collect(),
            ),
            Term::Unary(op, t) => Term::Unary(*op, Box::new(t.substitute_sorts(map))),
            Term::Binary(op, a, b) => Term::Binary(
                *op,
                Box::new(a.substitute_sorts(map)),
                Box::new(b.substitute_sorts(map)),
            ),
            Term::Ite(c, t, e) => Term::Ite(
                Box::new(c.substitute_sorts(map)),
                Box::new(t.substitute_sorts(map)),
                Box::new(e.substitute_sorts(map)),
            ),
            Term::App(n, args, s) => Term::App(
                n.clone(),
                args.iter().map(|a| a.substitute_sorts(map)).collect(),
                s.substitute(map),
            ),
            Term::IntLit(_) | Term::BoolLit(_) => self.clone(),
        }
    }

    /// Replaces every predicate unknown by the result of `f` (which
    /// receives the unknown's id and its pending substitution).
    pub fn apply_unknowns(&self, f: &impl Fn(UnknownId, &Substitution) -> Term) -> Term {
        match self {
            Term::Unknown(id, pending) => f(*id, pending),
            Term::Unary(op, t) => Term::Unary(*op, Box::new(t.apply_unknowns(f))),
            Term::Binary(op, a, b) => Term::Binary(
                *op,
                Box::new(a.apply_unknowns(f)),
                Box::new(b.apply_unknowns(f)),
            ),
            Term::Ite(c, t, e) => Term::Ite(
                Box::new(c.apply_unknowns(f)),
                Box::new(t.apply_unknowns(f)),
                Box::new(e.apply_unknowns(f)),
            ),
            Term::App(n, args, s) => Term::App(
                n.clone(),
                args.iter().map(|a| a.apply_unknowns(f)).collect(),
                s.clone(),
            ),
            Term::SetLit(s, elems) => Term::SetLit(
                s.clone(),
                elems.iter().map(|e| e.apply_unknowns(f)).collect(),
            ),
            _ => self.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }

    fn y() -> Term {
        Term::var("y", Sort::Int)
    }

    #[test]
    fn smart_constructors_simplify_boolean_literals() {
        assert!(Term::tt().and(Term::tt()).is_true());
        assert!(Term::tt().and(Term::ff()).is_false());
        assert_eq!(Term::tt().and(x().le(y())), x().le(y()));
        assert_eq!(Term::ff().or(x().le(y())), x().le(y()));
        assert!(Term::ff().implies(x().le(y())).is_true());
        assert!(Term::tt().not().is_false());
        assert_eq!(x().le(y()).not().not(), x().le(y()));
    }

    #[test]
    fn sorts_of_operators() {
        assert_eq!(x().plus(y()).sort(), Sort::Int);
        assert_eq!(x().le(y()).sort(), Sort::Bool);
        let s = Term::var("s", Sort::set(Sort::Int));
        assert_eq!(s.clone().union(s.clone()).sort(), Sort::set(Sort::Int));
        assert_eq!(x().member(s).sort(), Sort::Bool);
    }

    #[test]
    fn free_vars_includes_unknown_pending_substitutions() {
        let mut pending = Substitution::new();
        pending.insert(VALUE_VAR.to_string(), y());
        let t = Term::Unknown(0, pending).and(x().ge(Term::int(0)));
        let fv = t.free_vars();
        assert!(fv.contains_key("x"));
        assert!(fv.contains_key("y"));
        assert!(!fv.contains_key(VALUE_VAR));
    }

    #[test]
    fn substitution_composes_into_unknowns() {
        let u = Term::unknown(3);
        let s1 = u.substitute_value(&x());
        let s2 = s1.substitute_var("x", &y());
        match s2 {
            Term::Unknown(3, pending) => {
                assert_eq!(pending.get(VALUE_VAR), Some(&y()));
                assert_eq!(pending.get("x"), Some(&y()));
            }
            other => panic!("expected unknown, got {other:?}"),
        }
    }

    #[test]
    fn substitute_value_var() {
        let t = Term::value_var(Sort::Int).le(x());
        let t2 = t.substitute_value(&Term::int(5));
        assert_eq!(t2, Term::int(5).le(x()));
    }

    #[test]
    fn measures_collects_application_heads() {
        let lst = Term::var("xs", Sort::data("List", vec![Sort::var("a")]));
        let t = Term::app("len", vec![lst.clone()], Sort::Int)
            .eq(Term::int(0))
            .and(
                Term::app("elems", vec![lst], Sort::set(Sort::var("a")))
                    .eq(Term::empty_set(Sort::var("a"))),
            );
        let ms = t.measures();
        assert!(ms.contains("len"));
        assert!(ms.contains("elems"));
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn unknowns_are_collected() {
        let t = Term::unknown(1).and(Term::unknown(2)).implies(x().le(y()));
        let ids = t.unknowns();
        assert_eq!(ids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn substitute_sorts_rewrites_type_variables() {
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), Sort::Int);
        let t = Term::var("v", Sort::var("a")).eq(Term::var("w", Sort::var("a")));
        let t2 = t.substitute_sorts(&map);
        assert_eq!(t2, Term::var("v", Sort::Int).eq(Term::var("w", Sort::Int)));
    }
}
