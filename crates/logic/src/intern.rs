//! Hash-consed interning of refinement [`Term`]s.
//!
//! The synthesizer re-issues the same subtyping obligations many times —
//! across backtracking, across iterative-deepening rungs, and (with the
//! parallel engine) across goals running on different threads. Interning
//! maps every structurally distinct term to a small integer [`TermId`],
//! so that validity-cache keys are cheap to hash and compare and shared
//! subterms are stored once.
//!
//! The interner is a classic hash-consing table: terms are flattened
//! bottom-up into `Node`s whose children are already-interned ids, so
//! two terms receive the same id *iff* they are structurally equal, and
//! equal subtrees share one node regardless of how many parents mention
//! them. [`Interner::resolve`] rebuilds the `Term`, making interning a
//! lossless round trip.

use crate::sort::Sort;
use crate::term::{BinOp, Term, UnOp, UnknownId};
use std::collections::HashMap;

/// Identifier of an interned term. Ids are dense (`0..len`) and stable
/// for the lifetime of the [`Interner`] that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The raw index of the id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One hash-consed node: a [`Term`] constructor with interned children.
///
/// Pending substitutions inside predicate unknowns are flattened to
/// sorted `(variable, id)` pairs, mirroring the `BTreeMap` they come
/// from, so structural equality of unknowns is preserved.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    IntLit(i64),
    BoolLit(bool),
    SetLit(Sort, Vec<TermId>),
    Var(String, Sort),
    Unknown(UnknownId, Vec<(String, TermId)>),
    Unary(UnOp, TermId),
    Binary(BinOp, TermId, TermId),
    Ite(TermId, TermId, TermId),
    App(String, Vec<TermId>, Sort),
}

/// A hash-consing table for refinement terms.
#[derive(Debug, Default)]
pub struct Interner {
    ids: HashMap<Node, TermId>,
    nodes: Vec<Node>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns a term, returning its id. Structurally equal terms map to
    /// the same id; shared subterms are stored once.
    pub fn intern(&mut self, term: &Term) -> TermId {
        let node = match term {
            Term::IntLit(n) => Node::IntLit(*n),
            Term::BoolLit(b) => Node::BoolLit(*b),
            Term::SetLit(elem, items) => {
                Node::SetLit(elem.clone(), items.iter().map(|t| self.intern(t)).collect())
            }
            Term::Var(name, sort) => Node::Var(name.clone(), sort.clone()),
            Term::Unknown(id, pending) => Node::Unknown(
                *id,
                pending
                    .iter()
                    .map(|(k, v)| (k.clone(), self.intern(v)))
                    .collect(),
            ),
            Term::Unary(op, t) => Node::Unary(*op, self.intern(t)),
            Term::Binary(op, a, b) => Node::Binary(*op, self.intern(a), self.intern(b)),
            Term::Ite(c, t, e) => Node::Ite(self.intern(c), self.intern(t), self.intern(e)),
            Term::App(name, args, sort) => Node::App(
                name.clone(),
                args.iter().map(|t| self.intern(t)).collect(),
                sort.clone(),
            ),
        };
        self.intern_node(node)
    }

    fn intern_node(&mut self, node: Node) -> TermId {
        if let Some(id) = self.ids.get(&node) {
            return *id;
        }
        let id = TermId(u32::try_from(self.nodes.len()).expect("interner overflow"));
        self.nodes.push(node.clone());
        self.ids.insert(node, id);
        id
    }

    /// Looks a term up *without* interning it: returns its id only if
    /// the term (including every subterm) has been interned before.
    /// This keeps read-only probes — e.g. validity-cache lookups that
    /// miss — from growing the table.
    pub fn find(&self, term: &Term) -> Option<TermId> {
        let node = match term {
            Term::IntLit(n) => Node::IntLit(*n),
            Term::BoolLit(b) => Node::BoolLit(*b),
            Term::SetLit(elem, items) => Node::SetLit(
                elem.clone(),
                items
                    .iter()
                    .map(|t| self.find(t))
                    .collect::<Option<Vec<_>>>()?,
            ),
            Term::Var(name, sort) => Node::Var(name.clone(), sort.clone()),
            Term::Unknown(id, pending) => Node::Unknown(
                *id,
                pending
                    .iter()
                    .map(|(k, v)| Some((k.clone(), self.find(v)?)))
                    .collect::<Option<Vec<_>>>()?,
            ),
            Term::Unary(op, t) => Node::Unary(*op, self.find(t)?),
            Term::Binary(op, a, b) => Node::Binary(*op, self.find(a)?, self.find(b)?),
            Term::Ite(c, t, e) => Node::Ite(self.find(c)?, self.find(t)?, self.find(e)?),
            Term::App(name, args, sort) => Node::App(
                name.clone(),
                args.iter()
                    .map(|t| self.find(t))
                    .collect::<Option<Vec<_>>>()?,
                sort.clone(),
            ),
        };
        self.ids.get(&node).copied()
    }

    /// Rebuilds the term behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was produced by a different interner (and is out
    /// of range for this one).
    pub fn resolve(&self, id: TermId) -> Term {
        let node = &self.nodes[id.index()];
        match node {
            Node::IntLit(n) => Term::IntLit(*n),
            Node::BoolLit(b) => Term::BoolLit(*b),
            Node::SetLit(elem, items) => Term::SetLit(
                elem.clone(),
                items.iter().map(|i| self.resolve(*i)).collect(),
            ),
            Node::Var(name, sort) => Term::Var(name.clone(), sort.clone()),
            Node::Unknown(uid, pending) => Term::Unknown(
                *uid,
                pending
                    .iter()
                    .map(|(k, v)| (k.clone(), self.resolve(*v)))
                    .collect(),
            ),
            Node::Unary(op, t) => Term::Unary(*op, Box::new(self.resolve(*t))),
            Node::Binary(op, a, b) => {
                Term::Binary(*op, Box::new(self.resolve(*a)), Box::new(self.resolve(*b)))
            }
            Node::Ite(c, t, e) => Term::Ite(
                Box::new(self.resolve(*c)),
                Box::new(self.resolve(*t)),
                Box::new(self.resolve(*e)),
            ),
            Node::App(name, args, sort) => Term::App(
                name.clone(),
                args.iter().map(|i| self.resolve(*i)).collect(),
                sort.clone(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Substitution;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }
    fn y() -> Term {
        Term::var("y", Sort::Int)
    }

    #[test]
    fn equal_terms_get_equal_ids() {
        let mut interner = Interner::new();
        let a = interner.intern(&x().plus(y()).le(Term::int(3)));
        let b = interner.intern(&x().plus(y()).le(Term::int(3)));
        assert_eq!(a, b);
        let c = interner.intern(&x().plus(y()).le(Term::int(4)));
        assert_ne!(a, c);
    }

    #[test]
    fn shared_subterms_are_stored_once() {
        let mut interner = Interner::new();
        // (x + y) ≤ (x + y) shares the sum node: x, y, x+y, ≤ = 4 nodes.
        let sum = x().plus(y());
        interner.intern(&sum.clone().le(sum));
        assert_eq!(interner.len(), 4);
    }

    #[test]
    fn resolve_round_trips_structural_equality() {
        let mut interner = Interner::new();
        let list = Sort::data("List", vec![Sort::var("a")]);
        let terms = [
            Term::tt(),
            Term::int(-7),
            Term::empty_set(Sort::Int),
            Term::singleton(Sort::var("a"), Term::var("e", Sort::var("a"))),
            Term::app("len", vec![Term::value_var(list.clone())], Sort::Int).eq(x()),
            Term::ite(x().le(y()), x(), y()).neg(),
            x().le(y()).not().or(x().eq(y())),
        ];
        for term in terms {
            let id = interner.intern(&term);
            assert_eq!(interner.resolve(id), term, "round trip of {term}");
            // Re-interning the resolved term hits the same id.
            let resolved = interner.resolve(id);
            assert_eq!(interner.intern(&resolved), id);
        }
    }

    #[test]
    fn find_never_inserts() {
        let mut interner = Interner::new();
        let formula = x().plus(y()).le(Term::int(3));
        assert_eq!(interner.find(&formula), None);
        assert!(interner.is_empty(), "find must not intern");
        let id = interner.intern(&formula);
        assert_eq!(interner.find(&formula), Some(id));
        // A term sharing subterms with an interned one but not itself
        // interned is still absent, and probing it changes nothing.
        let len = interner.len();
        assert_eq!(interner.find(&x().plus(y()).le(Term::int(9))), None);
        assert_eq!(interner.len(), len);
    }

    #[test]
    fn unknown_pending_substitutions_participate_in_identity() {
        let mut interner = Interner::new();
        let plain = interner.intern(&Term::unknown(0));
        let mut pending = Substitution::new();
        pending.insert("x".into(), Term::int(1));
        let subst = interner.intern(&Term::Unknown(0, pending.clone()));
        assert_ne!(plain, subst);
        assert_eq!(interner.resolve(subst), Term::Unknown(0, pending));
    }
}
