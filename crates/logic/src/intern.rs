//! Hash-consed interning of refinement [`Term`]s.
//!
//! The synthesizer re-issues the same subtyping obligations many times —
//! across backtracking, across iterative-deepening rungs, and (with the
//! parallel engine) across goals running on different threads. Interning
//! maps every structurally distinct term to a small integer [`TermId`],
//! so that validity-cache keys are cheap to hash and compare and shared
//! subterms are stored once.
//!
//! The interner is a classic hash-consing table: terms are flattened
//! bottom-up into `Node`s whose children are already-interned ids, so
//! two terms receive the same id *iff* they are structurally equal, and
//! equal subtrees share one node regardless of how many parents mention
//! them. [`Interner::resolve`] rebuilds the `Term`, making interning a
//! lossless round trip.

use crate::sort::Sort;
use crate::term::{BinOp, Term, UnOp, UnknownId};
use std::collections::HashMap;

/// Identifier of an interned term. Ids are dense (`0..len`) and stable
/// until the next [`Interner::compact`], which renumbers survivors and
/// hands the caller a remap table for its own id-keyed structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The raw index of the id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One hash-consed node: a [`Term`] constructor with interned children.
///
/// Pending substitutions inside predicate unknowns are flattened to
/// sorted `(variable, id)` pairs, mirroring the `BTreeMap` they come
/// from, so structural equality of unknowns is preserved.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    IntLit(i64),
    BoolLit(bool),
    SetLit(Sort, Vec<TermId>),
    Var(String, Sort),
    Unknown(UnknownId, Vec<(String, TermId)>),
    Unary(UnOp, TermId),
    Binary(BinOp, TermId, TermId),
    Ite(TermId, TermId, TermId),
    App(String, Vec<TermId>, Sort),
}

impl Node {
    /// Visits each child id of this node once.
    fn for_each_child(&self, mut f: impl FnMut(TermId)) {
        match self {
            Node::IntLit(_) | Node::BoolLit(_) | Node::Var(_, _) => {}
            Node::SetLit(_, items) => items.iter().copied().for_each(&mut f),
            Node::Unknown(_, pending) => pending.iter().for_each(|(_, v)| f(*v)),
            Node::Unary(_, t) => f(*t),
            Node::Binary(_, a, b) => {
                f(*a);
                f(*b);
            }
            Node::Ite(c, t, e) => {
                f(*c);
                f(*t);
                f(*e);
            }
            Node::App(_, args, _) => args.iter().copied().for_each(&mut f),
        }
    }

    /// Rewrites each child id in place.
    fn map_children(&mut self, mut f: impl FnMut(TermId) -> TermId) {
        match self {
            Node::IntLit(_) | Node::BoolLit(_) | Node::Var(_, _) => {}
            Node::SetLit(_, items) => items.iter_mut().for_each(|i| *i = f(*i)),
            Node::Unknown(_, pending) => pending.iter_mut().for_each(|(_, v)| *v = f(*v)),
            Node::Unary(_, t) => *t = f(*t),
            Node::Binary(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            Node::Ite(c, t, e) => {
                *c = f(*c);
                *t = f(*t);
                *e = f(*e);
            }
            Node::App(_, args, _) => args.iter_mut().for_each(|i| *i = f(*i)),
        }
    }
}

/// A hash-consing table for refinement terms.
///
/// The table grows monotonically between [`Interner::compact`] calls;
/// a resident owner (the validity cache of a long-lived session) calls
/// `compact` at epoch boundaries with the ids its memo still references,
/// and every node unreachable from those roots is dropped. The
/// [`total_interned`](Interner::total_interned) /
/// [`total_evicted`](Interner::total_evicted) counter pair is monotone
/// across compactions, so `total_interned - total_evicted == len()`
/// always holds and a fleet dashboard can watch for leaks.
#[derive(Debug, Default)]
pub struct Interner {
    ids: HashMap<Node, TermId>,
    nodes: Vec<Node>,
    /// Distinct nodes ever created (monotone across compactions).
    total_interned: usize,
    /// Nodes dropped by compactions (monotone).
    total_evicted: usize,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Distinct nodes ever created by this interner, including nodes
    /// since evicted by [`compact`](Interner::compact).
    pub fn total_interned(&self) -> usize {
        self.total_interned
    }

    /// Nodes dropped by [`compact`](Interner::compact) calls so far.
    pub fn total_evicted(&self) -> usize {
        self.total_evicted
    }

    /// Interns a term, returning its id. Structurally equal terms map to
    /// the same id; shared subterms are stored once.
    pub fn intern(&mut self, term: &Term) -> TermId {
        let node = match term {
            Term::IntLit(n) => Node::IntLit(*n),
            Term::BoolLit(b) => Node::BoolLit(*b),
            Term::SetLit(elem, items) => {
                Node::SetLit(elem.clone(), items.iter().map(|t| self.intern(t)).collect())
            }
            Term::Var(name, sort) => Node::Var(name.clone(), sort.clone()),
            Term::Unknown(id, pending) => Node::Unknown(
                *id,
                pending
                    .iter()
                    .map(|(k, v)| (k.clone(), self.intern(v)))
                    .collect(),
            ),
            Term::Unary(op, t) => Node::Unary(*op, self.intern(t)),
            Term::Binary(op, a, b) => Node::Binary(*op, self.intern(a), self.intern(b)),
            Term::Ite(c, t, e) => Node::Ite(self.intern(c), self.intern(t), self.intern(e)),
            Term::App(name, args, sort) => Node::App(
                name.clone(),
                args.iter().map(|t| self.intern(t)).collect(),
                sort.clone(),
            ),
        };
        self.intern_node(node)
    }

    fn intern_node(&mut self, node: Node) -> TermId {
        if let Some(id) = self.ids.get(&node) {
            return *id;
        }
        let id = TermId(u32::try_from(self.nodes.len()).expect("interner overflow"));
        self.nodes.push(node.clone());
        self.ids.insert(node, id);
        self.total_interned += 1;
        id
    }

    /// Looks a term up *without* interning it: returns its id only if
    /// the term (including every subterm) has been interned before.
    /// This keeps read-only probes — e.g. validity-cache lookups that
    /// miss — from growing the table.
    pub fn find(&self, term: &Term) -> Option<TermId> {
        let node = match term {
            Term::IntLit(n) => Node::IntLit(*n),
            Term::BoolLit(b) => Node::BoolLit(*b),
            Term::SetLit(elem, items) => Node::SetLit(
                elem.clone(),
                items
                    .iter()
                    .map(|t| self.find(t))
                    .collect::<Option<Vec<_>>>()?,
            ),
            Term::Var(name, sort) => Node::Var(name.clone(), sort.clone()),
            Term::Unknown(id, pending) => Node::Unknown(
                *id,
                pending
                    .iter()
                    .map(|(k, v)| Some((k.clone(), self.find(v)?)))
                    .collect::<Option<Vec<_>>>()?,
            ),
            Term::Unary(op, t) => Node::Unary(*op, self.find(t)?),
            Term::Binary(op, a, b) => Node::Binary(*op, self.find(a)?, self.find(b)?),
            Term::Ite(c, t, e) => Node::Ite(self.find(c)?, self.find(t)?, self.find(e)?),
            Term::App(name, args, sort) => Node::App(
                name.clone(),
                args.iter()
                    .map(|t| self.find(t))
                    .collect::<Option<Vec<_>>>()?,
                sort.clone(),
            ),
        };
        self.ids.get(&node).copied()
    }

    /// Drops every node unreachable from `roots`, renumbering the
    /// survivors densely while preserving their relative order.
    ///
    /// Returns the remap table indexed by *old* id: `remap[old.index()]`
    /// is the surviving node's new id, or `None` if it was evicted. The
    /// caller owns every id-keyed side table and must re-key it through
    /// the remap; child links inside the interner are rewritten here.
    /// Children always precede their parents (interning is bottom-up),
    /// so a root keeps its entire subtree alive.
    pub fn compact(&mut self, roots: impl IntoIterator<Item = TermId>) -> Vec<Option<TermId>> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = roots.into_iter().map(|r| r.index()).collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            self.nodes[i].for_each_child(|c| stack.push(c.index()));
        }
        let mut remap: Vec<Option<TermId>> = vec![None; self.nodes.len()];
        let mut new_nodes: Vec<Node> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let new_id = TermId(u32::try_from(new_nodes.len()).expect("interner overflow"));
            remap[i] = Some(new_id);
            let mut renumbered = node.clone();
            renumbered.map_children(|c| remap[c.index()].expect("child of live node is live"));
            new_nodes.push(renumbered);
        }
        self.total_evicted += self.nodes.len() - new_nodes.len();
        self.ids = new_nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), TermId(i as u32)))
            .collect();
        self.nodes = new_nodes;
        remap
    }

    /// Rebuilds the term behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was produced by a different interner (and is out
    /// of range for this one).
    pub fn resolve(&self, id: TermId) -> Term {
        let node = &self.nodes[id.index()];
        match node {
            Node::IntLit(n) => Term::IntLit(*n),
            Node::BoolLit(b) => Term::BoolLit(*b),
            Node::SetLit(elem, items) => Term::SetLit(
                elem.clone(),
                items.iter().map(|i| self.resolve(*i)).collect(),
            ),
            Node::Var(name, sort) => Term::Var(name.clone(), sort.clone()),
            Node::Unknown(uid, pending) => Term::Unknown(
                *uid,
                pending
                    .iter()
                    .map(|(k, v)| (k.clone(), self.resolve(*v)))
                    .collect(),
            ),
            Node::Unary(op, t) => Term::Unary(*op, Box::new(self.resolve(*t))),
            Node::Binary(op, a, b) => {
                Term::Binary(*op, Box::new(self.resolve(*a)), Box::new(self.resolve(*b)))
            }
            Node::Ite(c, t, e) => Term::Ite(
                Box::new(self.resolve(*c)),
                Box::new(self.resolve(*t)),
                Box::new(self.resolve(*e)),
            ),
            Node::App(name, args, sort) => Term::App(
                name.clone(),
                args.iter().map(|i| self.resolve(*i)).collect(),
                sort.clone(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Substitution;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }
    fn y() -> Term {
        Term::var("y", Sort::Int)
    }

    #[test]
    fn equal_terms_get_equal_ids() {
        let mut interner = Interner::new();
        let a = interner.intern(&x().plus(y()).le(Term::int(3)));
        let b = interner.intern(&x().plus(y()).le(Term::int(3)));
        assert_eq!(a, b);
        let c = interner.intern(&x().plus(y()).le(Term::int(4)));
        assert_ne!(a, c);
    }

    #[test]
    fn shared_subterms_are_stored_once() {
        let mut interner = Interner::new();
        // (x + y) ≤ (x + y) shares the sum node: x, y, x+y, ≤ = 4 nodes.
        let sum = x().plus(y());
        interner.intern(&sum.clone().le(sum));
        assert_eq!(interner.len(), 4);
    }

    #[test]
    fn resolve_round_trips_structural_equality() {
        let mut interner = Interner::new();
        let list = Sort::data("List", vec![Sort::var("a")]);
        let terms = [
            Term::tt(),
            Term::int(-7),
            Term::empty_set(Sort::Int),
            Term::singleton(Sort::var("a"), Term::var("e", Sort::var("a"))),
            Term::app("len", vec![Term::value_var(list.clone())], Sort::Int).eq(x()),
            Term::ite(x().le(y()), x(), y()).neg(),
            x().le(y()).not().or(x().eq(y())),
        ];
        for term in terms {
            let id = interner.intern(&term);
            assert_eq!(interner.resolve(id), term, "round trip of {term}");
            // Re-interning the resolved term hits the same id.
            let resolved = interner.resolve(id);
            assert_eq!(interner.intern(&resolved), id);
        }
    }

    #[test]
    fn find_never_inserts() {
        let mut interner = Interner::new();
        let formula = x().plus(y()).le(Term::int(3));
        assert_eq!(interner.find(&formula), None);
        assert!(interner.is_empty(), "find must not intern");
        let id = interner.intern(&formula);
        assert_eq!(interner.find(&formula), Some(id));
        // A term sharing subterms with an interned one but not itself
        // interned is still absent, and probing it changes nothing.
        let len = interner.len();
        assert_eq!(interner.find(&x().plus(y()).le(Term::int(9))), None);
        assert_eq!(interner.len(), len);
    }

    #[test]
    fn compact_keeps_roots_and_their_subtrees() {
        let mut interner = Interner::new();
        let keep = interner.intern(&x().plus(y()).le(Term::int(3)));
        let drop = interner.intern(&x().eq(Term::int(42)));
        let before = interner.len();
        let remap = interner.compact([keep]);
        // The kept root and its whole subtree survive; the `= 42` spine
        // dies (x is shared with the survivor and stays).
        let new_keep = remap[keep.index()].expect("root survives");
        assert_eq!(remap[drop.index()], None);
        assert!(interner.len() < before);
        assert_eq!(
            interner.resolve(new_keep),
            x().plus(y()).le(Term::int(3)),
            "surviving ids resolve to the same terms"
        );
        // Re-interning the survivor is a no-op; the dropped term re-interns
        // as new nodes.
        assert_eq!(interner.intern(&x().plus(y()).le(Term::int(3))), new_keep);
        assert_eq!(
            interner.total_interned() - interner.total_evicted(),
            interner.len(),
            "counter pair accounts for every node"
        );
    }

    #[test]
    fn compact_counters_are_monotone() {
        let mut interner = Interner::new();
        interner.intern(&x());
        interner.intern(&y());
        assert_eq!(interner.total_interned(), 2);
        interner.compact([]);
        assert!(interner.is_empty());
        assert_eq!(interner.total_interned(), 2);
        assert_eq!(interner.total_evicted(), 2);
        interner.intern(&x());
        assert_eq!(interner.total_interned(), 3);
    }

    #[test]
    fn unknown_pending_substitutions_participate_in_identity() {
        let mut interner = Interner::new();
        let plain = interner.intern(&Term::unknown(0));
        let mut pending = Substitution::new();
        pending.insert("x".into(), Term::int(1));
        let subst = interner.intern(&Term::Unknown(0, pending.clone()));
        assert_ne!(plain, subst);
        assert_eq!(interner.resolve(subst), Term::Unknown(0, pending));
    }
}
