//! Logical qualifiers and liquid-formula spaces.
//!
//! A [`Qualifier`] is a boolean refinement term over *placeholder*
//! variables (written `?0`, `?1`, … here, `?` in the paper). Instantiating
//! a qualifier replaces each placeholder with a program variable (or the
//! value variable `ν`) of a compatible sort. A *liquid formula* is a
//! conjunction of such instantiated atoms; the finite set of atoms
//! available to a predicate unknown is its [`QSpace`].

use crate::sort::Sort;
use crate::term::{Term, VALUE_VAR};
use crate::Substitution;
use std::collections::BTreeSet;

/// Prefix used for placeholder variable names inside qualifiers.
pub const PLACEHOLDER_PREFIX: &str = "?";

/// A logical qualifier: a boolean term over placeholder variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Qualifier {
    /// The qualifier body; free variables whose names start with
    /// [`PLACEHOLDER_PREFIX`] are placeholders, all others (including `ν`)
    /// are kept as-is during instantiation.
    pub body: Term,
}

impl Qualifier {
    /// Creates a qualifier from a term.
    pub fn new(body: Term) -> Qualifier {
        Qualifier { body }
    }

    /// A placeholder variable usable inside qualifier bodies.
    pub fn hole(index: usize, sort: Sort) -> Term {
        Term::var(format!("{PLACEHOLDER_PREFIX}{index}"), sort)
    }

    /// The standard qualifier set `{? ≤ ?, ? ≠ ?, ? < ?}` over a sort,
    /// which is what the paper's running examples use.
    pub fn standard(sort: Sort) -> Vec<Qualifier> {
        let a = || Qualifier::hole(0, sort.clone());
        let b = || Qualifier::hole(1, sort.clone());
        vec![
            Qualifier::new(a().le(b())),
            Qualifier::new(a().neq(b())),
            Qualifier::new(a().lt(b())),
        ]
    }

    /// The placeholders of this qualifier, in order of first occurrence.
    pub fn placeholders(&self) -> Vec<(String, Sort)> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        self.body.walk(&mut |t| {
            if let Term::Var(name, sort) = t {
                if name.starts_with(PLACEHOLDER_PREFIX) && seen.insert(name.clone()) {
                    out.push((name.clone(), sort.clone()));
                }
            }
        });
        out
    }

    /// Instantiates the qualifier with every assignment of the candidate
    /// terms to its placeholders such that sorts are compatible and
    /// distinct placeholders receive distinct candidates. Instantiations
    /// whose two operands are syntactically identical (e.g. `x ≤ x`) are
    /// dropped, as are duplicates.
    pub fn instantiate(&self, candidates: &[Term]) -> Vec<Term> {
        let holes = self.placeholders();
        if holes.is_empty() {
            return vec![self.body.clone()];
        }
        let mut results = Vec::new();
        let mut assignment: Vec<Option<Term>> = vec![None; holes.len()];
        self.instantiate_rec(&holes, candidates, 0, &mut assignment, &mut results);
        // Deduplicate while preserving order.
        let mut seen = BTreeSet::new();
        results.retain(|t| seen.insert(t.clone()));
        results
    }

    fn instantiate_rec(
        &self,
        holes: &[(String, Sort)],
        candidates: &[Term],
        idx: usize,
        assignment: &mut Vec<Option<Term>>,
        out: &mut Vec<Term>,
    ) {
        if idx == holes.len() {
            let mut subst = Substitution::new();
            for (i, (name, _)) in holes.iter().enumerate() {
                subst.insert(name.clone(), assignment[i].clone().expect("assigned"));
            }
            let inst = self.body.substitute(&subst);
            if !trivial(&inst) {
                out.push(inst);
            }
            return;
        }
        let (_, hole_sort) = &holes[idx];
        for cand in candidates {
            if !cand.sort().compatible(hole_sort) {
                continue;
            }
            if assignment[..idx].iter().any(|a| a.as_ref() == Some(cand)) {
                continue;
            }
            assignment[idx] = Some(cand.clone());
            self.instantiate_rec(holes, candidates, idx + 1, assignment, out);
            assignment[idx] = None;
        }
    }
}

/// Returns true for degenerate instantiations such as `x ≤ x` or `x == x`.
fn trivial(t: &Term) -> bool {
    match t {
        Term::Binary(_, a, b) => a == b,
        _ => false,
    }
}

/// The finite space of atomic formulas available to one predicate unknown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QSpace {
    atoms: Vec<Term>,
}

impl QSpace {
    /// Builds a qualifier space by instantiating each qualifier with the
    /// given candidate terms (typically the environment variables in scope
    /// where the unknown was created, plus `ν`).
    pub fn build(qualifiers: &[Qualifier], candidates: &[Term]) -> QSpace {
        let mut atoms = Vec::new();
        let mut seen = BTreeSet::new();
        for q in qualifiers {
            for atom in q.instantiate(candidates) {
                if seen.insert(atom.clone()) {
                    atoms.push(atom);
                }
            }
        }
        QSpace { atoms }
    }

    /// Builds a qualifier space directly from a list of atoms.
    pub fn from_atoms(atoms: Vec<Term>) -> QSpace {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for atom in atoms {
            if seen.insert(atom.clone()) {
                out.push(atom);
            }
        }
        QSpace { atoms: out }
    }

    /// The atoms of this space.
    pub fn atoms(&self) -> &[Term] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if the space has no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Adds additional atoms, keeping the space duplicate-free.
    pub fn extend(&mut self, extra: impl IntoIterator<Item = Term>) {
        let existing: BTreeSet<Term> = self.atoms.iter().cloned().collect();
        for atom in extra {
            if !existing.contains(&atom) && !self.atoms.contains(&atom) {
                self.atoms.push(atom);
            }
        }
    }

    /// The conjunction of the atoms selected by `indices`.
    pub fn conjunction_of(&self, indices: &BTreeSet<usize>) -> Term {
        Term::conjunction(indices.iter().filter_map(|i| self.atoms.get(*i).cloned()))
    }
}

/// Candidate terms for qualifier instantiation: the value variable at the
/// given sort plus the supplied environment variables.
pub fn candidates_with_value(value_sort: Sort, env_vars: &[(String, Sort)]) -> Vec<Term> {
    let mut out = vec![Term::value_var(value_sort)];
    for (name, sort) in env_vars {
        if name != VALUE_VAR {
            out.push(Term::var(name.clone(), sort.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placeholders_in_order_of_occurrence() {
        let q = Qualifier::new(Qualifier::hole(0, Sort::Int).le(Qualifier::hole(1, Sort::Int)));
        let ph = q.placeholders();
        assert_eq!(ph.len(), 2);
        assert_eq!(ph[0].0, "?0");
        assert_eq!(ph[1].0, "?1");
    }

    #[test]
    fn instantiation_is_sort_directed_and_irreflexive() {
        let q = Qualifier::new(Qualifier::hole(0, Sort::Int).le(Qualifier::hole(1, Sort::Int)));
        let cands = vec![
            Term::var("x", Sort::Int),
            Term::var("y", Sort::Int),
            Term::var("b", Sort::Bool),
        ];
        let atoms = q.instantiate(&cands);
        // x<=y and y<=x only; b is filtered by sort; x<=x is trivial.
        assert_eq!(atoms.len(), 2);
        assert!(atoms.contains(&Term::var("x", Sort::Int).le(Term::var("y", Sort::Int))));
        assert!(atoms.contains(&Term::var("y", Sort::Int).le(Term::var("x", Sort::Int))));
    }

    #[test]
    fn qspace_deduplicates_across_qualifiers() {
        let q1 = Qualifier::new(Qualifier::hole(0, Sort::Int).le(Qualifier::hole(1, Sort::Int)));
        let q2 = Qualifier::new(Qualifier::hole(1, Sort::Int).le(Qualifier::hole(0, Sort::Int)));
        let cands = vec![Term::var("x", Sort::Int), Term::var("y", Sort::Int)];
        let space = QSpace::build(&[q1, q2], &cands);
        assert_eq!(space.len(), 2);
    }

    #[test]
    fn standard_qualifiers_cover_le_neq_lt() {
        let qs = Qualifier::standard(Sort::Int);
        assert_eq!(qs.len(), 3);
        let cands = vec![Term::var("n", Sort::Int), Term::int(0)];
        let space = QSpace::build(&qs, &cands);
        // n<=0, 0<=n, n!=0, n<0, 0<n (0!=n dedups against n!=0? no, they are
        // syntactically different) — just check a few key members.
        assert!(space
            .atoms()
            .contains(&Term::var("n", Sort::Int).le(Term::int(0))));
        assert!(space
            .atoms()
            .contains(&Term::int(0).lt(Term::var("n", Sort::Int))));
    }

    #[test]
    fn conjunction_of_selected_atoms() {
        let space = QSpace::from_atoms(vec![
            Term::var("x", Sort::Int).ge(Term::int(0)),
            Term::var("x", Sort::Int).le(Term::int(5)),
        ]);
        let mut sel = BTreeSet::new();
        sel.insert(0);
        sel.insert(1);
        let c = space.conjunction_of(&sel);
        assert_eq!(
            c,
            Term::var("x", Sort::Int)
                .ge(Term::int(0))
                .and(Term::var("x", Sort::Int).le(Term::int(5)))
        );
        assert!(space.conjunction_of(&BTreeSet::new()).is_true());
    }

    #[test]
    fn candidates_with_value_prepends_nu() {
        let cands = candidates_with_value(Sort::Int, &[("x".to_string(), Sort::Int)]);
        assert_eq!(cands[0], Term::value_var(Sort::Int));
        assert_eq!(cands.len(), 2);
    }
}
