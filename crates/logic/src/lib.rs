//! # synquid-logic
//!
//! The refinement logic underlying Synquid-style program synthesis
//! ("Program Synthesis from Polymorphic Refinement Types", PLDI 2016).
//!
//! This crate defines:
//!
//! * [`Sort`] — the sorts of refinement terms (booleans, integers, sets,
//!   datatype sorts, and uninterpreted sorts for type variables);
//! * [`Term`] — quantifier-free refinement terms over linear integer
//!   arithmetic, uninterpreted functions (measures), and sets, including
//!   *predicate unknowns* `P_i` used by the liquid fixpoint solver;
//! * substitution, free-variable computation, and sort checking;
//! * [`Qualifier`] and [`QSpace`] — logical qualifiers and the finite
//!   spaces of *liquid formulas* built from them;
//! * normalization helpers (negation normal form, conjunct splitting,
//!   constant folding) used by the solver and the type checker;
//! * [`Interner`] — hash-consed interning of terms into dense [`TermId`]s,
//!   the key representation of the shared validity cache.
//!
//! The value variable `ν` of the paper is represented by the distinguished
//! variable name [`VALUE_VAR`].
//!
//! ## Example
//!
//! ```
//! use synquid_logic::{Term, Sort};
//!
//! // len ν = n  (the output-length refinement of `replicate`)
//! let len_v = Term::app(
//!     "len",
//!     vec![Term::value_var(Sort::data("List", vec![Sort::var("a")]))],
//!     Sort::Int,
//! );
//! let n = Term::var("n", Sort::Int);
//! let refinement = len_v.eq(n);
//! assert_eq!(refinement.to_string(), "(len ν) == n");
//! ```

pub mod intern;
pub mod pretty;
pub mod qualifier;
pub mod simplify;
pub mod snapshot;
pub mod sort;
pub mod term;

pub use intern::{Interner, TermId};
pub use qualifier::{QSpace, Qualifier};
pub use sort::Sort;
pub use term::{BinOp, Term, UnOp, UnknownId, VALUE_VAR};

/// A substitution from variable names to terms.
pub type Substitution = std::collections::BTreeMap<String, Term>;
