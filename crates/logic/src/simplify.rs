//! Normalization helpers: constant folding, negation normal form, conjunct
//! splitting and if-then-else elimination.
//!
//! These transformations are shared between the SMT substrate (which wants
//! NNF, ite-free input) and the liquid fixpoint solver (which reasons about
//! conjunctions of atomic formulas).

use crate::term::{BinOp, Term, UnOp};

/// Splits a formula into its top-level conjuncts, dropping `true`.
pub fn conjuncts(t: &Term) -> Vec<Term> {
    let mut out = Vec::new();
    collect_conjuncts(t, &mut out);
    out
}

fn collect_conjuncts(t: &Term, out: &mut Vec<Term>) {
    match t {
        Term::Binary(BinOp::And, a, b) => {
            collect_conjuncts(a, out);
            collect_conjuncts(b, out);
        }
        Term::BoolLit(true) => {}
        other => out.push(other.clone()),
    }
}

/// Constant-folds boolean and integer literal operations. The result is
/// logically equivalent to the input.
pub fn fold_constants(t: &Term) -> Term {
    match t {
        Term::Unary(op, inner) => {
            let inner = fold_constants(inner);
            match (op, &inner) {
                (UnOp::Not, Term::BoolLit(b)) => Term::BoolLit(!b),
                (UnOp::Neg, Term::IntLit(n)) => Term::IntLit(-n),
                _ => Term::Unary(*op, Box::new(inner)),
            }
        }
        Term::Binary(op, a, b) => {
            let a = fold_constants(a);
            let b = fold_constants(b);
            if let (Term::IntLit(x), Term::IntLit(y)) = (&a, &b) {
                match op {
                    BinOp::Plus => return Term::IntLit(x + y),
                    BinOp::Minus => return Term::IntLit(x - y),
                    BinOp::Times => return Term::IntLit(x * y),
                    BinOp::Eq => return Term::BoolLit(x == y),
                    BinOp::Neq => return Term::BoolLit(x != y),
                    BinOp::Lt => return Term::BoolLit(x < y),
                    BinOp::Le => return Term::BoolLit(x <= y),
                    BinOp::Gt => return Term::BoolLit(x > y),
                    BinOp::Ge => return Term::BoolLit(x >= y),
                    _ => {}
                }
            }
            if let (Term::BoolLit(x), Term::BoolLit(y)) = (&a, &b) {
                match op {
                    BinOp::And => return Term::BoolLit(*x && *y),
                    BinOp::Or => return Term::BoolLit(*x || *y),
                    BinOp::Implies => return Term::BoolLit(!*x || *y),
                    BinOp::Iff => return Term::BoolLit(x == y),
                    BinOp::Eq => return Term::BoolLit(x == y),
                    BinOp::Neq => return Term::BoolLit(x != y),
                    _ => {}
                }
            }
            match op {
                BinOp::And => a.and(b),
                BinOp::Or => a.or(b),
                BinOp::Implies => a.implies(b),
                _ => Term::Binary(*op, Box::new(a), Box::new(b)),
            }
        }
        Term::Ite(c, th, el) => {
            let c = fold_constants(c);
            match c {
                Term::BoolLit(true) => fold_constants(th),
                Term::BoolLit(false) => fold_constants(el),
                c => Term::Ite(
                    Box::new(c),
                    Box::new(fold_constants(th)),
                    Box::new(fold_constants(el)),
                ),
            }
        }
        Term::App(n, args, s) => Term::App(
            n.clone(),
            args.iter().map(fold_constants).collect(),
            s.clone(),
        ),
        Term::SetLit(s, elems) => {
            Term::SetLit(s.clone(), elems.iter().map(fold_constants).collect())
        }
        _ => t.clone(),
    }
}

/// Converts a boolean term to negation normal form: negations are pushed
/// down to atoms, implications and bi-implications are expanded, and
/// negated comparisons are flipped (e.g. `¬(a ≤ b)` becomes `a > b`).
///
/// Predicate unknowns are treated as opaque atoms (a negated unknown stays
/// under a `Not`, which the fixpoint solver rejects as non-Horn).
pub fn nnf(t: &Term) -> Term {
    nnf_pos(t)
}

fn nnf_pos(t: &Term) -> Term {
    match t {
        Term::Unary(UnOp::Not, inner) => nnf_neg(inner),
        Term::Binary(BinOp::And, a, b) => nnf_pos(a).and(nnf_pos(b)),
        Term::Binary(BinOp::Or, a, b) => nnf_pos(a).or(nnf_pos(b)),
        Term::Binary(BinOp::Implies, a, b) => nnf_neg(a).or(nnf_pos(b)),
        Term::Binary(BinOp::Iff, a, b) => {
            let fwd = nnf_neg(a).or(nnf_pos(b));
            let bwd = nnf_neg(b).or(nnf_pos(a));
            fwd.and(bwd)
        }
        _ => t.clone(),
    }
}

fn nnf_neg(t: &Term) -> Term {
    match t {
        Term::BoolLit(b) => Term::BoolLit(!b),
        Term::Unary(UnOp::Not, inner) => nnf_pos(inner),
        Term::Binary(BinOp::And, a, b) => nnf_neg(a).or(nnf_neg(b)),
        Term::Binary(BinOp::Or, a, b) => nnf_neg(a).and(nnf_neg(b)),
        Term::Binary(BinOp::Implies, a, b) => nnf_pos(a).and(nnf_neg(b)),
        Term::Binary(BinOp::Iff, a, b) => {
            let l = nnf_pos(a).and(nnf_neg(b));
            let r = nnf_neg(a).and(nnf_pos(b));
            l.or(r)
        }
        Term::Binary(BinOp::Eq, a, b) if a.sort() == crate::Sort::Bool => {
            nnf_neg(&Term::Binary(BinOp::Iff, a.clone(), b.clone()))
        }
        Term::Binary(BinOp::Eq, a, b) => Term::Binary(BinOp::Neq, a.clone(), b.clone()),
        Term::Binary(BinOp::Neq, a, b) => Term::Binary(BinOp::Eq, a.clone(), b.clone()),
        Term::Binary(BinOp::Lt, a, b) => Term::Binary(BinOp::Ge, a.clone(), b.clone()),
        Term::Binary(BinOp::Le, a, b) => Term::Binary(BinOp::Gt, a.clone(), b.clone()),
        Term::Binary(BinOp::Gt, a, b) => Term::Binary(BinOp::Le, a.clone(), b.clone()),
        Term::Binary(BinOp::Ge, a, b) => Term::Binary(BinOp::Lt, a.clone(), b.clone()),
        other => Term::Unary(UnOp::Not, Box::new(other.clone())),
    }
}

/// Lifts if-then-else expressions that occur *below* boolean structure into
/// boolean case splits, so that downstream passes (set elimination, theory
/// purification) never encounter `ite` in atom positions.
///
/// A boolean-sorted `ite c t e` becomes `(c ∧ t) ∨ (¬c ∧ e)`. A non-boolean
/// `ite` nested inside an atom `A[ite c t e]` becomes
/// `(c ∧ A[t]) ∨ (¬c ∧ A[e])`.
pub fn eliminate_ite(t: &Term) -> Term {
    match t {
        Term::Binary(op, a, b) if op.is_boolean_connective() => {
            Term::Binary(*op, Box::new(eliminate_ite(a)), Box::new(eliminate_ite(b)))
        }
        Term::Unary(UnOp::Not, inner) => eliminate_ite(inner).not(),
        Term::Ite(c, th, el) if th.sort() == crate::Sort::Bool => {
            let c = eliminate_ite(c);
            let th = eliminate_ite(th);
            let el = eliminate_ite(el);
            (c.clone().and(th)).or(c.not().and(el))
        }
        _ => {
            // An atom: look for a nested ite and split on it.
            if let Some((cond, with_then, with_else)) = split_first_ite(t) {
                let pos = cond.clone().and(eliminate_ite(&with_then));
                let neg = cond.not().and(eliminate_ite(&with_else));
                pos.or(neg)
            } else {
                t.clone()
            }
        }
    }
}

impl BinOp {
    /// True for `∧`, `∨`, `⇒`, `⇔`.
    pub fn is_boolean_connective(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Implies | BinOp::Iff)
    }
}

/// Finds the first (pre-order) `ite` sub-term of an atom and returns its
/// condition together with copies of the atom where the `ite` is replaced
/// by its then- and else-branch respectively.
fn split_first_ite(t: &Term) -> Option<(Term, Term, Term)> {
    fn replace(t: &Term, target: &Term, with: &Term) -> Term {
        if t == target {
            return with.clone();
        }
        match t {
            Term::Unary(op, inner) => Term::Unary(*op, Box::new(replace(inner, target, with))),
            Term::Binary(op, a, b) => Term::Binary(
                *op,
                Box::new(replace(a, target, with)),
                Box::new(replace(b, target, with)),
            ),
            Term::Ite(c, a, b) => Term::Ite(
                Box::new(replace(c, target, with)),
                Box::new(replace(a, target, with)),
                Box::new(replace(b, target, with)),
            ),
            Term::App(n, args, s) => Term::App(
                n.clone(),
                args.iter().map(|a| replace(a, target, with)).collect(),
                s.clone(),
            ),
            Term::SetLit(s, elems) => Term::SetLit(
                s.clone(),
                elems.iter().map(|e| replace(e, target, with)).collect(),
            ),
            _ => t.clone(),
        }
    }

    let mut found: Option<Term> = None;
    t.walk(&mut |sub| {
        if found.is_none() {
            if let Term::Ite(_, _, _) = sub {
                found = Some(sub.clone());
            }
        }
    });
    let ite = found?;
    if let Term::Ite(c, th, el) = &ite {
        let with_then = replace(t, &ite, th);
        let with_else = replace(t, &ite, el);
        Some(((**c).clone(), with_then, with_else))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sort;

    fn x() -> Term {
        Term::var("x", Sort::Int)
    }
    fn y() -> Term {
        Term::var("y", Sort::Int)
    }

    #[test]
    fn conjuncts_flattens_nested_ands() {
        let t = x().le(y()).and(y().le(x()).and(x().eq(Term::int(0))));
        assert_eq!(conjuncts(&t).len(), 3);
        assert!(conjuncts(&Term::tt()).is_empty());
    }

    #[test]
    fn fold_constants_evaluates_arithmetic() {
        let t = Term::int(2).plus(Term::int(3)).le(Term::int(6));
        assert!(fold_constants(&t).is_true());
        let t = Term::int(2).plus(x());
        assert_eq!(fold_constants(&t), Term::int(2).plus(x()));
    }

    #[test]
    fn nnf_flips_negated_comparisons() {
        let t = x().le(y()).not();
        assert_eq!(nnf(&t), x().gt(y()));
        let t = x().le(y()).and(y().lt(x())).not();
        assert_eq!(nnf(&t), x().gt(y()).or(y().ge(x())));
    }

    #[test]
    fn nnf_expands_implication() {
        let t = x().le(y()).implies(x().lt(y().plus(Term::int(1))));
        assert_eq!(nnf(&t), x().gt(y()).or(x().lt(y().plus(Term::int(1)))));
    }

    #[test]
    fn ite_elimination_on_boolean_ite() {
        let t = Term::ite(x().le(y()), x().eq(Term::int(0)), y().eq(Term::int(0)));
        let e = eliminate_ite(&t);
        assert_eq!(
            e,
            (x().le(y()).and(x().eq(Term::int(0)))).or(x().le(y()).not().and(y().eq(Term::int(0))))
        );
    }

    #[test]
    fn ite_elimination_inside_atom() {
        // (if x <= y then x else y) >= 0
        let m = Term::ite(x().le(y()), x(), y());
        let t = m.ge(Term::int(0));
        let e = eliminate_ite(&t);
        assert_eq!(
            e,
            (x().le(y()).and(x().ge(Term::int(0)))).or(x().le(y()).not().and(y().ge(Term::int(0))))
        );
    }
}
