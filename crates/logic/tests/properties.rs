//! Property-based tests for the refinement-term algebra.
//!
//! Gated behind the `proptest` feature: the external `proptest` crate is
//! not vendored, so these tests only compile where it can be fetched —
//! enabling the feature also requires uncommenting the `proptest`
//! dev-dependency in this crate's Cargo.toml.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::collections::BTreeMap;
use synquid_logic::simplify::{conjuncts, fold_constants, nnf};
use synquid_logic::{Interner, Sort, Substitution, Term};

/// A strategy for small boolean formulas over the integer variables
/// `x`, `y`, `z` and small constants.
fn arb_int_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-4i64..5).prop_map(Term::int),
        Just(Term::var("x", Sort::Int)),
        Just(Term::var("y", Sort::Int)),
        Just(Term::var("z", Sort::Int)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.plus(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.minus(b)),
        ]
    })
}

fn arb_formula() -> impl Strategy<Value = Term> {
    let atom = prop_oneof![
        Just(Term::tt()),
        Just(Term::ff()),
        (arb_int_term(), arb_int_term()).prop_map(|(a, b)| a.le(b)),
        (arb_int_term(), arb_int_term()).prop_map(|(a, b)| a.lt(b)),
        (arb_int_term(), arb_int_term()).prop_map(|(a, b)| a.eq(b)),
        (arb_int_term(), arb_int_term()).prop_map(|(a, b)| a.neq(b)),
    ];
    atom.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            inner.clone().prop_map(|a| a.not()),
        ]
    })
}

/// Evaluates a closed-after-substitution formula under an integer
/// assignment; returns `None` if the term is not boolean or mentions
/// unexpected constructs.
fn eval(term: &Term, env: &BTreeMap<&str, i64>) -> Option<i64> {
    use synquid_logic::{BinOp, UnOp};
    Some(match term {
        Term::IntLit(n) => *n,
        Term::BoolLit(b) => *b as i64,
        Term::Var(name, _) => *env.get(name.as_str())?,
        Term::Unary(UnOp::Neg, t) => -eval(t, env)?,
        Term::Unary(UnOp::Not, t) => 1 - eval(t, env)?,
        Term::Binary(op, a, b) => {
            let a = eval(a, env)?;
            let b = eval(b, env)?;
            match op {
                BinOp::Plus => a + b,
                BinOp::Minus => a - b,
                BinOp::Times => a * b,
                BinOp::Eq => (a == b) as i64,
                BinOp::Neq => (a != b) as i64,
                BinOp::Le => (a <= b) as i64,
                BinOp::Lt => (a < b) as i64,
                BinOp::Ge => (a >= b) as i64,
                BinOp::Gt => (a > b) as i64,
                BinOp::And => (a != 0 && b != 0) as i64,
                BinOp::Or => (a != 0 || b != 0) as i64,
                BinOp::Implies => (a == 0 || b != 0) as i64,
                BinOp::Iff => ((a != 0) == (b != 0)) as i64,
                _ => return None,
            }
        }
        Term::Ite(c, t, e) => {
            if eval(c, env)? != 0 {
                eval(t, env)?
            } else {
                eval(e, env)?
            }
        }
        _ => return None,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// NNF preserves the truth value of formulas under every assignment
    /// from a small sample.
    #[test]
    fn nnf_preserves_semantics(f in arb_formula(), x in -3i64..4, y in -3i64..4, z in -3i64..4) {
        let env: BTreeMap<&str, i64> = [("x", x), ("y", y), ("z", z)].into_iter().collect();
        let original = eval(&f, &env);
        let normalized = eval(&nnf(&f), &env);
        prop_assert_eq!(original.map(|v| v != 0), normalized.map(|v| v != 0));
    }

    /// Constant folding preserves semantics.
    #[test]
    fn fold_constants_preserves_semantics(f in arb_formula(), x in -3i64..4, y in -3i64..4) {
        let env: BTreeMap<&str, i64> = [("x", x), ("y", y), ("z", 0)].into_iter().collect();
        let original = eval(&f, &env);
        let folded = eval(&fold_constants(&f), &env);
        prop_assert_eq!(original.map(|v| v != 0), folded.map(|v| v != 0));
    }

    /// NNF never leaves a negation above a connective.
    #[test]
    fn nnf_pushes_negations_to_atoms(f in arb_formula()) {
        use synquid_logic::{BinOp, UnOp};
        let mut ok = true;
        nnf(&f).walk(&mut |t| {
            if let Term::Unary(UnOp::Not, inner) = t {
                if let Term::Binary(op, _, _) = inner.as_ref() {
                    if matches!(op, BinOp::And | BinOp::Or | BinOp::Implies | BinOp::Iff) {
                        ok = false;
                    }
                }
            }
        });
        prop_assert!(ok);
    }

    /// Substituting a variable eliminates it from the free-variable set
    /// (when the replacement does not itself mention the variable).
    #[test]
    fn substitution_eliminates_the_variable(f in arb_formula(), c in -5i64..6) {
        let mut subst = Substitution::new();
        subst.insert("x".to_string(), Term::int(c));
        let substituted = f.substitute(&subst);
        prop_assert!(!substituted.free_vars().contains_key("x"));
    }

    /// Substitution commutes with evaluation.
    #[test]
    fn substitution_commutes_with_evaluation(f in arb_formula(), c in -3i64..4, y in -3i64..4) {
        let mut subst = Substitution::new();
        subst.insert("x".to_string(), Term::int(c));
        let substituted = f.substitute(&subst);
        let env_full: BTreeMap<&str, i64> = [("x", c), ("y", y), ("z", 1)].into_iter().collect();
        let env_rest: BTreeMap<&str, i64> = [("x", 99), ("y", y), ("z", 1)].into_iter().collect();
        // After substitution the value of the original x binding is irrelevant.
        prop_assert_eq!(eval(&f, &env_full), eval(&substituted, &env_rest).or(eval(&substituted, &env_full)));
    }

    /// Interning is a lossless round trip, and ids coincide exactly when
    /// the terms are structurally equal (the key soundness property of
    /// the shared validity cache, which compares interned ids instead of
    /// whole terms).
    #[test]
    fn interning_round_trips_structural_equality(f in arb_formula(), g in arb_formula()) {
        let mut interner = Interner::new();
        let id_f = interner.intern(&f);
        let id_g = interner.intern(&g);
        prop_assert_eq!(id_f == id_g, f == g);
        prop_assert_eq!(interner.resolve(id_f), f.clone());
        prop_assert_eq!(interner.resolve(id_g), g);
        // Re-interning a resolved term is stable.
        let resolved = interner.resolve(id_f);
        prop_assert_eq!(interner.intern(&resolved), id_f);
        prop_assert_eq!(interner.intern(&f), id_f);
    }

    /// Splitting a conjunction and conjoining the pieces back is the
    /// identity up to truth value.
    #[test]
    fn conjuncts_roundtrip(f in arb_formula(), x in -3i64..4, y in -3i64..4) {
        let env: BTreeMap<&str, i64> = [("x", x), ("y", y), ("z", 2)].into_iter().collect();
        let parts = conjuncts(&f);
        let rebuilt = Term::conjunction(parts);
        // Only compare when the original is itself a conjunction shape;
        // for other shapes conjuncts returns the formula unchanged.
        prop_assert_eq!(eval(&f, &env).map(|v| v != 0), eval(&rebuilt, &env).map(|v| v != 0));
    }
}
