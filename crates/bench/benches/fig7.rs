//! Criterion bench regenerating Figure 7's fast end: synthesis time for
//! `max_n` (condition-abduction stress test). The full Fig. 7 sweep
//! (including `array_search_n` and larger `n`, which take tens of seconds
//! per point on the bundled SMT substrate) is produced by the `report`
//! binary: `cargo run --release -p synquid-bench --bin report -- fig7`.

//! Requires the `criterion` feature (and the external `criterion` crate —
//! uncomment the dev-dependency in this crate's Cargo.toml as well);
//! without both, the bench compiles to an empty shell so that offline
//! `cargo test`/`cargo bench` still build.

#[cfg(feature = "criterion")]
mod real {

    use criterion::{criterion_group, BenchmarkId, Criterion};
    use std::time::Duration;
    use synquid_lang::benchmarks::max_n;
    use synquid_lang::runner::{run_goal, Variant};

    fn bench_fig7(c: &mut Criterion) {
        let mut group = c.benchmark_group("fig7");
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(5));
        for n in 2..=2 {
            group.bench_with_input(BenchmarkId::new("max", n), &n, |b, &n| {
                b.iter(|| {
                    run_goal(
                        &max_n(n),
                        Variant::Default.config(Duration::from_secs(30), (1, 0)),
                    )
                })
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_fig7);
}

fn main() {
    #[cfg(feature = "criterion")]
    {
        real::benches();
        criterion::Criterion::default()
            .configure_from_args()
            .final_summary();
    }
}
