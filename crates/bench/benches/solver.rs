//! Criterion bench over the solver-microbenchmark fixtures: each
//! captured DPLL(T)/LIA/MUS workload is timed against a fresh solver
//! instance per iteration (see `synquid_bench::solver_bench`).

//! Requires the `criterion` feature (and the external `criterion` crate —
//! uncomment the dev-dependency in this crate's Cargo.toml as well);
//! without both, the bench compiles to an empty shell so that offline
//! `cargo test`/`cargo bench` still build. The dependency-free smoke
//! variant of the same fixtures runs via `report solver-bench --smoke`.

#[cfg(feature = "criterion")]
mod real {

    use criterion::{criterion_group, Criterion};
    use synquid_bench::solver_bench::run_fixture;

    fn bench_solver(c: &mut Criterion) {
        let mut group = c.benchmark_group("solver");
        group.sample_size(20);
        for fixture in synquid_bench::fixtures::all() {
            group.bench_function(fixture.name, |b| {
                b.iter(|| run_fixture(&fixture, 1));
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_solver);
}

fn main() {
    #[cfg(feature = "criterion")]
    {
        real::benches();
        criterion::Criterion::default()
            .configure_from_args()
            .final_summary();
    }
}
