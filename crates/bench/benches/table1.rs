//! Criterion bench regenerating (a fast, representative subset of)
//! Table 1: per-benchmark synthesis time with all features enabled.

//! Requires the `criterion` feature (and the external `criterion` crate —
//! uncomment the dev-dependency in this crate's Cargo.toml as well);
//! without both, the bench compiles to an empty shell so that offline
//! `cargo test`/`cargo bench` still build.

#[cfg(feature = "criterion")]
mod real {

    use criterion::{criterion_group, Criterion};
    use std::time::Duration;
    use synquid_lang::benchmarks::transcribed;
    use synquid_lang::runner::{run_goal, Variant};

    fn bench_table1(c: &mut Criterion) {
        let mut group = c.benchmark_group("table1");
        group.sample_size(10);
        group.measurement_time(Duration::from_secs(5));
        // Keep the per-iteration cost bounded: only quick benchmarks are
        // measured repeatedly; the full table is produced by the `report`
        // binary instead.
        let quick = ["is_empty", "length"];
        for benchmark in transcribed() {
            let goal = (benchmark.goal.unwrap())();
            if !quick.contains(&goal.name.as_str()) {
                continue;
            }
            group.bench_function(benchmark.name, |b| {
                b.iter(|| {
                    let goal = (benchmark.goal.unwrap())();
                    let config = Variant::Default.config(Duration::from_secs(30), benchmark.bounds);
                    run_goal(&goal, config)
                })
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_table1);
}

fn main() {
    #[cfg(feature = "criterion")]
    {
        real::benches();
        criterion::Criterion::default()
            .configure_from_args()
            .final_summary();
    }
}
