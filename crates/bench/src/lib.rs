//! # synquid-bench
//!
//! The benchmark harness that regenerates the paper's evaluation artifacts:
//!
//! * **Table 1** — the 64-benchmark suite with the T-all / T-nrt / T-ncc /
//!   T-nmus columns (the transcribed subset is run live, the remaining
//!   rows are reported as "not transcribed");
//! * **Table 2** — the comparison against Leon, Jennisys, Myth, λ²,
//!   Escher, and Myth2 (competitor numbers quoted from the paper, the
//!   Synquid column measured);
//! * **Figure 7** — synthesis time versus `n` for `max_n` and
//!   `array_search_n`.
//!
//! The `report` binary prints these tables; the Criterion benches under
//! `benches/` time a representative subset for regression tracking.

use std::time::Duration;
use synquid_lang::benchmarks::{sygus, table1, table2, Benchmark};
use synquid_lang::runner::{run_goal, RunResult, Variant};

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The benchmark metadata.
    pub benchmark: Benchmark,
    /// Results per variant, in [`Variant::all`] order; `None` for rows
    /// whose specification has not been transcribed.
    pub results: Option<Vec<(Variant, RunResult)>>,
}

/// Runs (the transcribed subset of) Table 1.
///
/// `timeout` bounds each individual synthesis run; `ablations` selects
/// whether the T-nrt / T-ncc / T-nmus columns are measured in addition to
/// T-all.
pub fn run_table1(timeout: Duration, ablations: bool) -> Vec<Table1Row> {
    let variants: Vec<Variant> = if ablations {
        Variant::all().to_vec()
    } else {
        vec![Variant::Default]
    };
    table1()
        .into_iter()
        .map(|benchmark| {
            let results = benchmark.goal.map(|build| {
                variants
                    .iter()
                    .map(|variant| {
                        let goal = build();
                        let config = variant.config(timeout, benchmark.bounds);
                        (*variant, run_goal(&goal, config))
                    })
                    .collect()
            });
            Table1Row { benchmark, results }
        })
        .collect()
}

/// Formats the regenerated Table 1 as text.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<28} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}\n",
        "Group", "Benchmark", "paper-T", "paper-sz", "T-all", "T-nrt", "T-ncc", "T-nmus"
    ));
    for row in rows {
        let b = &row.benchmark;
        let mut cells = vec!["n/a".to_string(); 4];
        match &row.results {
            None => cells[0] = "not transcribed".to_string(),
            Some(results) => {
                for (variant, result) in results {
                    let idx = Variant::all().iter().position(|v| v == variant).unwrap();
                    cells[idx] = result.time_cell();
                }
            }
        }
        out.push_str(&format!(
            "{:<22} {:<28} {:>8.2} {:>8} | {:>8} {:>8} {:>8} {:>8}\n",
            b.group,
            b.name,
            b.paper_time,
            b.paper_code_size,
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        ));
    }
    out
}

/// One row of the regenerated Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Tool and benchmark names plus the quoted competitor numbers.
    pub row: synquid_lang::benchmarks::ComparisonRow,
    /// The measured Synquid result, when the corresponding Table 1
    /// benchmark has been transcribed.
    pub measured: Option<RunResult>,
}

/// Runs Table 2: competitor numbers are quoted, the Synquid column is
/// measured for transcribed benchmarks.
pub fn run_table2(timeout: Duration) -> Vec<Table2Row> {
    let t1 = table1();
    table2()
        .into_iter()
        .map(|row| {
            let measured = row
                .table1_name
                .and_then(|name| t1.iter().find(|b| b.name == name))
                .and_then(|b| b.goal.map(|build| (b, build)))
                .map(|(b, build)| {
                    let goal = build();
                    run_goal(&goal, Variant::Default.config(timeout, b.bounds))
                });
            Table2Row { row, measured }
        })
        .collect()
}

/// Formats the regenerated Table 2 as text.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<28} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
        "Tool", "Benchmark", "Spec", "Time", "SpecS", "TimeS(paper)", "TimeS(ours)"
    ));
    for r in rows {
        let spec = r
            .row
            .competitor_spec
            .map(|s| s.to_string())
            .unwrap_or_else(|| "n/a".to_string());
        let ours = r
            .measured
            .as_ref()
            .map(|m| m.time_cell())
            .unwrap_or_else(|| "n/t".to_string());
        out.push_str(&format!(
            "{:<10} {:<28} {:>10} {:>10.2} {:>10} {:>10.2} {:>12}\n",
            r.row.tool,
            r.row.benchmark,
            spec,
            r.row.competitor_time,
            r.row.synquid_spec,
            r.row.synquid_time,
            ours
        ));
    }
    out
}

/// One point of the Fig. 7 series.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Benchmark name (`max<n>` or `array_search<n>`).
    pub name: String,
    /// The parameter `n`.
    pub n: usize,
    /// The measured result.
    pub result: RunResult,
}

/// Runs the Fig. 7 family for `n = 2..=max_n`.
pub fn run_fig7(max_n: usize, timeout: Duration) -> Vec<Fig7Point> {
    sygus(max_n)
        .into_iter()
        .map(|(name, n, goal)| {
            let bounds = (1, 0);
            let result = run_goal(&goal, Variant::Default.config(timeout, bounds));
            Fig7Point { name, n, result }
        })
        .collect()
}

/// Formats the Fig. 7 series as text.
pub fn format_fig7(points: &[Fig7Point]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>4} {:>10} {:>10}\n",
        "Benchmark", "n", "time(s)", "solved"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<20} {:>4} {:>10} {:>10}\n",
            p.name,
            p.n,
            p.result.time_cell(),
            p.result.solved
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_report_includes_all_rows_without_running() {
        // Zero-second timeout: transcribed rows fail fast, but the report
        // structure still covers all 64 benchmarks.
        let rows = run_table1(Duration::from_millis(1), false);
        assert_eq!(rows.len(), 64);
        let text = format_table1(&rows);
        assert!(text.contains("not transcribed"));
        assert!(text.contains("replicate"));
    }

    #[test]
    fn fig7_report_formats_every_point() {
        // A 1-millisecond budget keeps this a pure structure test: the
        // timing columns of Fig. 7 are produced by the `report` binary.
        let points = run_fig7(2, Duration::from_millis(1));
        assert_eq!(points.len(), 2);
        let text = format_fig7(&points);
        assert!(text.contains("max2"));
        assert!(text.contains("array_search2"));
    }
}
