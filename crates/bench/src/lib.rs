//! # synquid-bench
//!
//! The benchmark harness that regenerates the paper's evaluation artifacts:
//!
//! * **Table 1** — the 64-benchmark suite with the T-all / T-nrt / T-ncc /
//!   T-nmus columns (the transcribed subset is run live, the remaining
//!   rows are reported as "not transcribed");
//! * **Table 2** — the comparison against Leon, Jennisys, Myth, λ²,
//!   Escher, and Myth2 (competitor numbers quoted from the paper, the
//!   Synquid column measured);
//! * **Figure 7** — synthesis time versus `n` for `max_n` and
//!   `array_search_n`.
//!
//! The `report` binary prints these tables; the Criterion benches under
//! `benches/` time a representative subset for regression tracking. The
//! binary's `batch` subcommand additionally runs the whole `specs/`
//! corpus through the parallel engine and emits a machine-readable
//! timing report ([`batch_report_json`], uploaded by CI as
//! `BENCH_pr7.json`), the markdown corpus table embedded in the README
//! ([`corpus_markdown_table`]), and per-goal deltas against a previous
//! artifact ([`compare_batch`] — CI fails when a previously solved goal
//! regressed to a timeout).

use std::time::Duration;
use synquid_engine::{BatchReport, Engine, EngineConfig, GoalJob, SynthesisSession};
use synquid_lang::benchmarks::{sygus, table1, table2, Benchmark};
pub use synquid_lang::runner::goal_label;
use synquid_lang::runner::{run_goal, RunResult, Variant};
use synquid_telemetry::PhaseProfile;

pub mod fixtures;
pub mod solver_bench;

/// Version stamped into every BENCH JSON artifact this crate emits.
/// History: absent = v1 (PR 2–5, no phase data); 2 = per-goal `phases`
/// map and top-level `schema_version` (PR 6); 3 = the `resident` block
/// (per-run session-layer counters for cold + warm replays of the
/// corpus against one resident session, PR 10).
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// One row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The benchmark metadata.
    pub benchmark: Benchmark,
    /// Results per variant, in [`Variant::all`] order; `None` for rows
    /// whose specification has not been transcribed.
    pub results: Option<Vec<(Variant, RunResult)>>,
}

/// Runs (the transcribed subset of) Table 1.
///
/// `timeout` bounds each individual synthesis run; `ablations` selects
/// whether the T-nrt / T-ncc / T-nmus columns are measured in addition to
/// T-all.
pub fn run_table1(timeout: Duration, ablations: bool) -> Vec<Table1Row> {
    let variants: Vec<Variant> = if ablations {
        Variant::all().to_vec()
    } else {
        vec![Variant::Default]
    };
    table1()
        .into_iter()
        .map(|benchmark| {
            let results = benchmark.goal.map(|build| {
                variants
                    .iter()
                    .map(|variant| {
                        let goal = build();
                        let config = variant.config(timeout, benchmark.bounds);
                        (*variant, run_goal(&goal, config))
                    })
                    .collect()
            });
            Table1Row { benchmark, results }
        })
        .collect()
}

/// Formats the regenerated Table 1 as text.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<28} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}\n",
        "Group", "Benchmark", "paper-T", "paper-sz", "T-all", "T-nrt", "T-ncc", "T-nmus"
    ));
    for row in rows {
        let b = &row.benchmark;
        let mut cells = vec!["n/a".to_string(); 4];
        match &row.results {
            None => cells[0] = "not transcribed".to_string(),
            Some(results) => {
                for (variant, result) in results {
                    let idx = Variant::all().iter().position(|v| v == variant).unwrap();
                    cells[idx] = result.time_cell();
                }
            }
        }
        out.push_str(&format!(
            "{:<22} {:<28} {:>8.2} {:>8} | {:>8} {:>8} {:>8} {:>8}\n",
            b.group,
            b.name,
            b.paper_time,
            b.paper_code_size,
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        ));
    }
    out
}

/// One row of the regenerated Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Tool and benchmark names plus the quoted competitor numbers.
    pub row: synquid_lang::benchmarks::ComparisonRow,
    /// The measured Synquid result, when the corresponding Table 1
    /// benchmark has been transcribed.
    pub measured: Option<RunResult>,
}

/// Runs Table 2: competitor numbers are quoted, the Synquid column is
/// measured for transcribed benchmarks.
pub fn run_table2(timeout: Duration) -> Vec<Table2Row> {
    let t1 = table1();
    table2()
        .into_iter()
        .map(|row| {
            let measured = row
                .table1_name
                .and_then(|name| t1.iter().find(|b| b.name == name))
                .and_then(|b| b.goal.map(|build| (b, build)))
                .map(|(b, build)| {
                    let goal = build();
                    run_goal(&goal, Variant::Default.config(timeout, b.bounds))
                });
            Table2Row { row, measured }
        })
        .collect()
}

/// Formats the regenerated Table 2 as text.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<28} {:>10} {:>10} {:>10} {:>10} {:>12}\n",
        "Tool", "Benchmark", "Spec", "Time", "SpecS", "TimeS(paper)", "TimeS(ours)"
    ));
    for r in rows {
        let spec = r
            .row
            .competitor_spec
            .map(|s| s.to_string())
            .unwrap_or_else(|| "n/a".to_string());
        let ours = r
            .measured
            .as_ref()
            .map(|m| m.time_cell())
            .unwrap_or_else(|| "n/t".to_string());
        out.push_str(&format!(
            "{:<10} {:<28} {:>10} {:>10.2} {:>10} {:>10.2} {:>12}\n",
            r.row.tool,
            r.row.benchmark,
            spec,
            r.row.competitor_time,
            r.row.synquid_spec,
            r.row.synquid_time,
            ours
        ));
    }
    out
}

/// One point of the Fig. 7 series.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Benchmark name (`max<n>` or `array_search<n>`).
    pub name: String,
    /// The parameter `n`.
    pub n: usize,
    /// The measured result.
    pub result: RunResult,
}

/// Runs the Fig. 7 family for `n = 2..=max_n`.
pub fn run_fig7(max_n: usize, timeout: Duration) -> Vec<Fig7Point> {
    sygus(max_n)
        .into_iter()
        .map(|(name, n, goal)| {
            let bounds = (1, 0);
            let result = run_goal(&goal, Variant::Default.config(timeout, bounds));
            Fig7Point { name, n, result }
        })
        .collect()
}

/// Formats the Fig. 7 series as text.
pub fn format_fig7(points: &[Fig7Point]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>4} {:>10} {:>10}\n",
        "Benchmark", "n", "time(s)", "solved"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<20} {:>4} {:>10} {:>10}\n",
            p.name,
            p.n,
            p.result.time_cell(),
            p.result.solved
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Batch runs over the specs/ corpus (the PR-2 timing artifact)
// ---------------------------------------------------------------------

/// Loads every goal of the `specs/` corpus as engine jobs, in corpus
/// order, or errors when the corpus is missing or a spec fails to load.
pub fn corpus_jobs() -> Result<Vec<GoalJob>, Box<dyn std::error::Error>> {
    let files = synquid_lang::spec::corpus_files();
    if files.is_empty() {
        return Err("specs/ corpus not found".into());
    }
    let mut batch = Vec::new();
    for file in files {
        let spec = synquid_lang::spec::load_file(&file)?;
        // Label goals with the repo-relative spec path: provenance must
        // read the same (and compare equal across artifacts) wherever
        // the corpus directory was resolved from.
        let source = file
            .file_name()
            .map(|n| format!("specs/{}", n.to_string_lossy()))
            .unwrap_or_else(|| file.display().to_string());
        for goal in spec.goals {
            batch.push(GoalJob::new(source.clone(), goal));
        }
    }
    Ok(batch)
}

/// Runs every goal of the `specs/` corpus through the parallel engine,
/// against the given (possibly already warm) session.
///
/// Returns the deterministic [`BatchReport`] (outcomes in corpus order)
/// or an error when the corpus is missing or a spec file fails to load.
pub fn run_corpus_batch(
    jobs: usize,
    timeout: Duration,
    session: &SynthesisSession,
) -> Result<BatchReport, Box<dyn std::error::Error>> {
    let engine = Engine::new(EngineConfig {
        jobs,
        timeout,
        ..EngineConfig::default()
    });
    Ok(engine.run_batch(corpus_jobs()?, session))
}

/// Runs the corpus `1 + warm_runs` times against one resident session:
/// element 0 is the cold run, the rest replay with warm caches. Each
/// report's `session` counters are that run's own traffic, so warm
/// cross-run hit rates are directly comparable to the cold within-run
/// rate.
pub fn run_corpus_warm(
    jobs: usize,
    timeout: Duration,
    warm_runs: usize,
) -> Result<Vec<BatchReport>, Box<dyn std::error::Error>> {
    let session = SynthesisSession::new();
    let mut reports = Vec::with_capacity(1 + warm_runs);
    for _ in 0..=warm_runs {
        let engine = Engine::new(EngineConfig {
            jobs,
            timeout,
            ..EngineConfig::default()
        });
        reports.push(engine.run_batch(corpus_jobs()?, &session));
    }
    Ok(reports)
}

/// Checks that a warm replay reproduced the cold run's outcomes exactly:
/// same goals, same solved verdicts, same programs. A difference is the
/// residency-soundness alarm CI keys on (a cached verdict or replayed
/// lemma changed a result, which the session design promises never
/// happens).
pub fn warm_outcomes_match(cold: &BatchReport, warm: &BatchReport) -> Result<(), String> {
    if cold.outcomes.len() != warm.outcomes.len() {
        return Err(format!(
            "goal count changed: {} cold vs {} warm",
            cold.outcomes.len(),
            warm.outcomes.len()
        ));
    }
    for (c, w) in cold.outcomes.iter().zip(&warm.outcomes) {
        let label = synquid_lang::runner::goal_label(&c.result.name, &c.source);
        if c.result.name != w.result.name || c.source != w.source {
            return Err(format!(
                "goal order changed at {label}: warm has {}",
                synquid_lang::runner::goal_label(&w.result.name, &w.source)
            ));
        }
        if c.result.solved != w.result.solved {
            return Err(format!(
                "{label}: solved flipped {} -> {} under a warm session",
                c.result.solved, w.result.solved
            ));
        }
        if c.result.program != w.result.program {
            return Err(format!(
                "{label}: synthesized program changed under a warm session"
            ));
        }
    }
    Ok(())
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`BatchReport`] as the machine-readable `BENCH_pr10.json`
/// artifact: per-goal timings, budget-ledger accounting (rungs run /
/// cancelled / skipped / out of budget, budget consumed), the
/// enumeration counters (terms enumerated, pruned early, memo hits),
/// the incremental-solver counters (conflicts learned / replayed,
/// assumptions dropped, warm tableau starts, bounds propagated, shared
/// MUS encodings, pivots saved), plus the shared validity-cache
/// counters. (Hand-rolled JSON: the workspace resolves offline, so no
/// serde.)
pub fn batch_report_json(report: &BatchReport, timeout: Duration) -> String {
    batch_report_json_runs(std::slice::from_ref(report), timeout)
}

/// [`batch_report_json`] over a cold run plus its warm replays (as
/// produced by [`run_corpus_warm`]; `runs[0]` is the cold run and
/// supplies the per-goal body). Schema v3 adds the `resident` block:
/// one entry per run with that run's session-layer counters (validity /
/// enumeration / lemma traffic, namespaces), cold-vs-warm wall times,
/// and whether every warm replay reproduced the cold outcomes.
pub fn batch_report_json_runs(runs: &[BatchReport], timeout: Duration) -> String {
    let report = &runs[0];
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"report\": \"BENCH_pr10\",\n");
    out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"jobs\": {},\n", report.jobs));
    out.push_str(&format!("  \"timeout_secs\": {},\n", timeout.as_secs()));
    out.push_str(&format!("  \"wall_secs\": {:.3},\n", report.wall_secs));
    let c = &report.cache;
    out.push_str(&format!(
        "  \"validity_cache\": {{\"hits\": {}, \"misses\": {}, \"negative_hits\": {}, \"entries\": {}, \"interned_nodes\": {}, \"hit_rate\": {:.4}}},\n",
        c.hits, c.misses, c.negative_hits, c.entries, c.interned_nodes, c.hit_rate()
    ));
    out.push_str("  \"resident\": {\n");
    out.push_str(&format!("    \"warm_runs\": {},\n", runs.len() - 1));
    let outcomes_match = runs[1..]
        .iter()
        .all(|warm| warm_outcomes_match(report, warm).is_ok());
    out.push_str(&format!("    \"outcomes_match\": {outcomes_match},\n"));
    out.push_str(&format!(
        "    \"cold_wall_secs\": {:.3},\n",
        report.wall_secs
    ));
    let warm_min = runs[1..]
        .iter()
        .map(|r| r.wall_secs)
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "    \"warm_min_wall_secs\": {},\n",
        if runs.len() > 1 {
            format!("{warm_min:.3}")
        } else {
            "null".to_string()
        }
    ));
    out.push_str("    \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let s = &run.session;
        let solved = run.outcomes.iter().filter(|o| o.result.solved).count();
        out.push_str(&format!(
            "      {{\"warm\": {}, \"wall_secs\": {:.3}, \"solved\": {solved}, \"validity_hits\": {}, \"validity_misses\": {}, \"validity_hit_rate\": {:.4}, \"validity_entries\": {}, \"validity_evicted\": {}, \"terms_interned\": {}, \"terms_evicted\": {}, \"enum_hits\": {}, \"enum_misses\": {}, \"enum_hit_rate\": {:.4}, \"enum_evicted\": {}, \"lemmas_absorbed\": {}, \"lemmas_resident\": {}, \"namespaces\": {}}}{}\n",
            i > 0,
            run.wall_secs,
            s.validity.hits,
            s.validity.misses,
            s.validity.hit_rate(),
            s.validity.entries,
            s.validity.entries_evicted,
            s.validity.terms_interned,
            s.validity.terms_evicted,
            s.enumeration.hits,
            s.enumeration.misses,
            s.enumeration.hit_rate(),
            s.enumeration.evicted,
            s.lemmas.absorbed,
            s.lemmas.resident,
            s.namespaces,
            if i + 1 == runs.len() { "" } else { "," },
        ));
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    out.push_str("  \"goals\": [\n");
    for (i, o) in report.outcomes.iter().enumerate() {
        let r = &o.result;
        let rung = match o.winning_rung {
            Some((a, m)) => format!("[{a}, {m}]"),
            None => "null".to_string(),
        };
        let code_size = r
            .code_size
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".to_string());
        let stat = |f: fn(&synquid_lang::SynthesisStats) -> usize| match &r.stats {
            Some(s) => f(s).to_string(),
            None => "null".to_string(),
        };
        // `phases` stays last on the line so the flat field extractors
        // above it never cut inside the nested object; an empty profile
        // is omitted entirely (the schema makes absence mean "no phase
        // data", matching v1 artifacts).
        let phases = match &r.stats {
            Some(s) if !s.phases.is_empty() => {
                format!(", \"phases\": {}", s.phases.to_json())
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"name\": \"{}\", \"solved\": {}, \"timed_out\": {}, \"time_secs\": {:.3}, \"consumed_secs\": {:.3}, \"code_size\": {}, \"winning_rung\": {}, \"rungs_run\": {}, \"rungs_cancelled\": {}, \"rungs_skipped\": {}, \"rungs_out_of_budget\": {}, \"terms_enumerated\": {}, \"eterms_checked\": {}, \"pruned_early\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \"smt_conflicts_learned\": {}, \"smt_conflicts_reused\": {}, \"assumptions_dropped\": {}, \"tableau_warm_starts\": {}, \"bounds_propagated\": {}, \"mus_shared_encodings\": {}, \"lia_pivots_saved\": {}{phases}}}{}\n",
            json_escape(&o.source),
            json_escape(&r.name),
            r.solved,
            r.timed_out,
            r.time_secs,
            o.consumed_secs,
            code_size,
            rung,
            o.rungs_run,
            o.rungs_cancelled,
            o.rungs_skipped,
            o.rungs_out_of_budget,
            stat(|s| s.terms_enumerated),
            stat(|s| s.eterms_checked),
            stat(|s| s.pruned_early),
            stat(|s| s.memo_hits),
            stat(|s| s.memo_misses),
            stat(|s| s.smt_conflicts_learned),
            stat(|s| s.smt_conflicts_reused),
            stat(|s| s.assumptions_dropped),
            stat(|s| s.tableau_warm_starts),
            stat(|s| s.bounds_propagated),
            stat(|s| s.mus_shared_encodings),
            stat(|s| s.lia_pivots_saved),
            if i + 1 == report.outcomes.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Generated corpus table (the README "Reproduction status" section)
// ---------------------------------------------------------------------

/// Renders a [`BatchReport`] as the markdown corpus table embedded in the
/// README's "Reproduction status" section (`report batch --readme`
/// regenerates it, so the README cannot silently drift from reality).
pub fn corpus_markdown_table(report: &BatchReport, timeout: Duration) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "<!-- generated by `cargo run --release -p synquid-bench --bin report -- batch --jobs {} --timeout {} --readme` -->\n",
        report.jobs,
        timeout.as_secs()
    ));
    out.push_str(
        "| Goal | Status | Time (s) | Enumerated | Checked | Pruned early | Memo hits | Conflicts replayed | Warm LIA starts | Rungs skipped |\n",
    );
    out.push_str("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for o in &report.outcomes {
        let r = &o.result;
        let status = if r.solved {
            "**solved**".to_string()
        } else if r.timed_out {
            "timeout".to_string()
        } else {
            "no solution".to_string()
        };
        let time = if r.solved {
            format!("{:.2}", r.time_secs)
        } else {
            "—".to_string()
        };
        let counters = match &r.stats {
            Some(s) => [
                s.terms_enumerated.to_string(),
                s.eterms_checked.to_string(),
                s.pruned_early.to_string(),
                s.memo_hits.to_string(),
                s.smt_conflicts_reused.to_string(),
                s.tableau_warm_starts.to_string(),
            ],
            None => std::array::from_fn(|_| "—".to_string()),
        };
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            synquid_lang::runner::goal_label(&r.name, &o.source),
            status,
            time,
            counters[0],
            counters[1],
            counters[2],
            counters[3],
            counters[4],
            counters[5],
            o.rungs_skipped,
        ));
    }
    let solved = report.outcomes.iter().filter(|o| o.result.solved).count();
    out.push_str(&format!(
        "\n{solved} of {} corpus goals synthesize at this budget ({} worker(s), {}s/goal).\n",
        report.outcomes.len(),
        report.jobs,
        timeout.as_secs()
    ));
    out
}

// ---------------------------------------------------------------------
// Cross-report comparison (`report batch --compare OLD.json`)
// ---------------------------------------------------------------------

/// One goal's entry parsed back out of a batch-report JSON artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedGoal {
    /// Spec file the goal came from.
    pub file: String,
    /// Goal name.
    pub name: String,
    /// Whether it synthesized.
    pub solved: bool,
    /// Wall-clock seconds.
    pub time_secs: f64,
    /// Per-phase timing split, when the artifact carries one
    /// (schema v2+ with profiling enabled; `None` for v1 artifacts).
    pub phases: Option<PhaseProfile>,
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn json_raw_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

/// Extracts a brace-balanced `"key": {…}` object from a line (the flat
/// extractor above would cut at the first `,` inside the object).
fn json_object_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": {{");
    let start = line.find(&tag)? + tag.len() - 1;
    let rest = &line[start..];
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[..=i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Reads the `schema_version` stamp of a batch artifact. Artifacts from
/// before the stamp existed (PR 2–5) report version 1.
pub fn batch_schema_version(text: &str) -> u64 {
    text.lines()
        .find_map(|line| json_raw_field(line, "schema_version"))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Parses the per-goal entries back out of a `BENCH_pr2.json` /
/// `BENCH_pr3.json` artifact. The reports are emitted one goal per line
/// by [`batch_report_json`], so a line-oriented scan is exact for our own
/// artifacts (no general JSON parser needed — the workspace is
/// dependency-free by design).
pub fn parse_batch_json(text: &str) -> Vec<ParsedGoal> {
    text.lines()
        .filter_map(|line| {
            let file = json_str_field(line, "file")?;
            let name = json_str_field(line, "name")?;
            let solved = json_raw_field(line, "solved")? == "true";
            let time_secs = json_raw_field(line, "time_secs")?.parse().ok()?;
            let phases =
                json_object_field(line, "phases").and_then(|obj| PhaseProfile::parse_json(&obj));
            Some(ParsedGoal {
                file,
                name,
                solved,
                time_secs,
                phases,
            })
        })
        .collect()
}

/// One per-goal entry parsed back out of a `synquid fuzz --out` summary
/// artifact (see `synquid_oracle::summary_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFuzzGoal {
    /// Goal name.
    pub goal: String,
    /// Stable spec-file label (`specs/<name>.sq`).
    pub source: String,
    /// Why the goal was skipped (unsolved, higher-order, …), if it was.
    pub skipped: Option<String>,
    /// Cases whose output satisfied the postcondition.
    pub pass: u64,
    /// Cases whose output violated the postcondition — the soundness
    /// signal the whole oracle exists for.
    pub violation: u64,
    /// Cases where evaluation itself failed.
    pub crash: u64,
    /// Cases abandoned because rejection sampling could not hit the
    /// precondition within its retry budget.
    pub gave_up: u64,
    /// Cases where the oracle could not decide (fuel, unsupported term).
    pub undecidable: u64,
    /// Generator draws discarded by precondition refinements.
    pub rejected: u64,
}

/// A parsed `synquid fuzz` summary: the header counters plus every
/// per-goal line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzSummary {
    /// The seed the run was keyed on (same seed ⇒ byte-identical artifact).
    pub seed: u64,
    /// Requested cases per goal.
    pub cases: u64,
    /// Postcondition violations across all goals.
    pub total_violations: u64,
    /// Differential divergences (ablated engine disagreed) across all goals.
    pub total_divergences: u64,
    /// Per-goal entries in corpus order.
    pub goals: Vec<ParsedFuzzGoal>,
}

/// Parses a `synquid fuzz --out` artifact. Like [`parse_batch_json`],
/// this is a line-oriented scan over our own one-goal-per-line emitter,
/// not a general JSON parser.
pub fn parse_fuzz_json(text: &str) -> FuzzSummary {
    let header = |key: &str| {
        text.lines()
            .find_map(|line| json_raw_field(line, key))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let count = |line: &str, key: &str| {
        json_raw_field(line, key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let goals = text
        .lines()
        .filter_map(|line| {
            let goal = json_str_field(line, "goal")?;
            let source = json_str_field(line, "source")?;
            Some(ParsedFuzzGoal {
                goal,
                source,
                skipped: json_str_field(line, "skipped"),
                pass: count(line, "pass"),
                violation: count(line, "violation"),
                crash: count(line, "crash"),
                gave_up: count(line, "gave_up"),
                undecidable: count(line, "undecidable"),
                rejected: count(line, "rejected"),
            })
        })
        .collect();
    FuzzSummary {
        seed: header("seed"),
        cases: header("cases"),
        total_violations: header("total_violations"),
        total_divergences: header("total_divergences"),
        goals,
    }
}

/// Renders a parsed fuzz artifact as the per-goal table `report fuzz`
/// prints. The caller decides the exit code from
/// [`FuzzSummary::total_violations`] / [`FuzzSummary::total_divergences`].
pub fn format_fuzz_summary(summary: &FuzzSummary) -> String {
    let mut out = format!(
        "{:<45} {:>6} {:>9} {:>8} {:>8}\n",
        "goal", "pass", "violation", "gave up", "rejected"
    );
    let mut fuzzed = 0usize;
    for g in &summary.goals {
        let label = synquid_lang::runner::goal_label(&g.goal, &g.source);
        match &g.skipped {
            Some(reason) => out.push_str(&format!("{label:<45} skipped ({reason})\n")),
            None => {
                fuzzed += 1;
                let odd = g.crash + g.undecidable;
                out.push_str(&format!(
                    "{label:<45} {:>6} {:>9} {:>8} {:>8}{}\n",
                    g.pass,
                    g.violation,
                    g.gave_up,
                    g.rejected,
                    if odd > 0 {
                        format!("  ({} crash/undecidable)", odd)
                    } else {
                        String::new()
                    }
                ));
            }
        }
    }
    out.push_str(&format!(
        "\n{fuzzed} goal(s) fuzzed at {} case(s) each (seed {}), {} violation(s), {} divergence(s).\n",
        summary.cases, summary.seed, summary.total_violations, summary.total_divergences
    ));
    out
}

/// The result of comparing a batch run against a previous artifact.
#[derive(Debug, Clone)]
pub struct BatchComparison {
    /// The formatted per-goal delta table.
    pub text: String,
    /// Goals solved now that were unsolved in the old artifact.
    pub newly_solved: usize,
    /// Goals solved in the old artifact that no longer solve — the
    /// regression condition CI fails on.
    pub regressed: usize,
    /// Goals still solved but more than 1.5× slower than before (and by
    /// more than half a second, so fast goals aren't flagged for noise) —
    /// the second regression condition CI fails on.
    pub time_regressed: usize,
    /// Still-solved goals whose `lia` phase (first-check theory time)
    /// regressed by the same [`is_time_regression`] gate — the solver-
    /// side regression condition CI fails on, so the warm-tableau wins
    /// can't silently erode even while total wall time stays inside the
    /// overall gate. Requires phase data on both sides; goals without it
    /// are not counted.
    pub lia_time_regressed: usize,
}

/// The time-regression gate: a still-solved goal counts as regressed
/// when it got more than 1.5× slower **and** lost more than half a
/// second of wall time (the absolute floor keeps sub-second goals from
/// tripping the gate on scheduling noise).
pub fn is_time_regression(prev_secs: f64, new_secs: f64) -> bool {
    new_secs > 1.5 * prev_secs && new_secs - prev_secs > 0.5
}

/// Compares a previous batch artifact with the current run: solved↔
/// timeout flips and time ratios, so CI uploads show the trajectory from
/// PR to PR — and CI can fail when [`BatchComparison::regressed`] is
/// nonzero.
pub fn compare_batch(old: &[ParsedGoal], report: &BatchReport) -> BatchComparison {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:>10} {:>10} {:>8}\n",
        "goal", "before", "after", "ratio"
    ));
    let mut flips_solved = 0usize;
    let mut flips_lost = 0usize;
    let mut time_regressed = 0usize;
    let mut lia_time_regressed = 0usize;
    let mut phase_deltas = String::new();
    for o in &report.outcomes {
        let r = &o.result;
        let label = synquid_lang::runner::goal_label(&r.name, &o.source);
        // Provenance paths may be absolute or relative depending on where
        // the artifact was produced; the spec file name is the stable part.
        let file_key = |path: &str| path.rsplit(['/', '\\']).next().unwrap_or(path).to_string();
        let Some(prev) = old
            .iter()
            .find(|p| p.name == r.name && file_key(&p.file) == file_key(&o.source))
        else {
            out.push_str(&format!(
                "{label:<40} {:>10} {:>10} {:>8}\n",
                "-",
                cell(r.solved, r.time_secs),
                "new"
            ));
            continue;
        };
        let ratio = if prev.solved && r.solved && r.time_secs > 0.0 {
            if is_time_regression(prev.time_secs, r.time_secs) {
                time_regressed += 1;
                format!("{:.2}x SLOW", prev.time_secs / r.time_secs)
            } else {
                format!("{:.2}x", prev.time_secs / r.time_secs)
            }
        } else if !prev.solved && r.solved {
            flips_solved += 1;
            "FIXED".to_string()
        } else if prev.solved && !r.solved {
            flips_lost += 1;
            "LOST".to_string()
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{label:<40} {:>10} {:>10} {:>8}\n",
            cell(prev.solved, prev.time_secs),
            cell(r.solved, r.time_secs),
            ratio
        ));
        // Phase-split deltas, when both artifacts carry phase data for
        // this goal: where inside the solver did the time move?
        if let (Some(old_phases), Some(new_phases)) = (
            &prev.phases,
            r.stats
                .as_ref()
                .map(|s| &s.phases)
                .filter(|p| !p.is_empty()),
        ) {
            let mut lines = String::new();
            for phase in synquid_telemetry::Phase::ALL {
                let before = old_phases.get(phase).total_secs();
                let after = new_phases.get(phase).total_secs();
                // The LIA-phase gate: a still-solved goal whose
                // first-check theory time blew past the regression
                // thresholds fails CI even if wall time didn't.
                let lia_regressed = phase == synquid_telemetry::Phase::Lia
                    && prev.solved
                    && r.solved
                    && is_time_regression(before, after);
                if lia_regressed {
                    lia_time_regressed += 1;
                }
                if before.max(after) < 0.01 {
                    continue;
                }
                lines.push_str(&format!(
                    "    {:<16} {before:>9.3}s -> {after:>9.3}s ({:+.3}s){}\n",
                    phase.name(),
                    after - before,
                    if lia_regressed {
                        "  LIA REGRESSION"
                    } else {
                        ""
                    }
                ));
            }
            if !lines.is_empty() {
                phase_deltas.push_str(&format!("  {label}\n{lines}"));
            }
        }
    }
    if !phase_deltas.is_empty() {
        out.push_str(&format!("\nphase splits (self time):\n{phase_deltas}"));
    }
    out.push_str(&format!(
        "\n{flips_solved} goal(s) newly solved, {flips_lost} regressed, {time_regressed} slowed >1.5x, {lia_time_regressed} LIA-phase regression(s), {} total.\n",
        report.outcomes.len()
    ));
    return BatchComparison {
        text: out,
        newly_solved: flips_solved,
        regressed: flips_lost,
        time_regressed,
        lia_time_regressed,
    };

    fn cell(solved: bool, time: f64) -> String {
        if solved {
            format!("{time:.2}s")
        } else {
            "timeout".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_batch_json_covers_every_goal() {
        // A 1-millisecond budget keeps this a structure test: goals all
        // time out instantly, but every corpus goal must appear in the
        // JSON with its portfolio accounting.
        let timeout = Duration::from_millis(1);
        let session = SynthesisSession::new();
        let report = run_corpus_batch(2, timeout, &session).expect("the specs/ corpus loads");
        assert!(
            report.outcomes.len() >= 16,
            "expected at least 16 corpus goals, got {}",
            report.outcomes.len()
        );
        let json = batch_report_json(&report, timeout);
        assert!(json.contains("\"report\": \"BENCH_pr10\""));
        assert!(json.contains("\"resident\": {"));
        assert!(json.contains("\"warm_runs\": 0"));
        assert!(json.contains("\"warm_min_wall_secs\": null"));
        assert!(json.contains("\"namespaces\""));
        assert!(json.contains("\"tableau_warm_starts\""));
        assert!(json.contains("\"bounds_propagated\""));
        assert!(json.contains("\"mus_shared_encodings\""));
        assert!(json.contains("\"lia_pivots_saved\""));
        assert!(json.contains("\"validity_cache\""));
        assert!(json.contains("\"terms_enumerated\""));
        assert!(json.contains("\"pruned_early\""));
        assert!(json.contains("\"memo_hits\""));
        assert!(json.contains("\"rungs_skipped\""));
        assert!(json.contains("\"consumed_secs\""));
        assert!(json.contains("\"smt_conflicts_reused\""));
        assert!(json.contains("\"assumptions_dropped\""));
        assert!(json.contains("replicate"));
        assert!(json.contains("tree_member"));
        // A 1 ms budget cannot be meaningfully exceeded in reporting:
        // every goal's reported time is its ledger consumption, and a
        // goal that fails must be out of budget, never a fake timeout.
        for goal in parse_batch_json(&json) {
            assert!(!goal.solved, "nothing solves in 1 ms: {goal:?}");
        }
        assert_eq!(
            json.matches("\"file\":").count(),
            report.outcomes.len(),
            "one goals[] entry per outcome"
        );
        // The artifact round-trips through the comparison parser.
        let parsed = parse_batch_json(&json);
        assert_eq!(parsed.len(), report.outcomes.len());
        assert!(parsed.iter().any(|g| g.name == "replicate"));
        let table = corpus_markdown_table(&report, timeout);
        assert!(table.contains("| Goal | Status |"));
        assert!(table.contains("replicate @ "));
        let deltas = compare_batch(&parsed, &report);
        assert!(deltas.text.contains("0 goal(s) newly solved"));
        assert_eq!(deltas.newly_solved, 0);
        assert_eq!(deltas.regressed, 0, "self-comparison cannot regress");
    }

    #[test]
    fn warm_replay_artifact_carries_per_run_resident_counters() {
        // 1 ms budgets keep this a structure test: nothing solves cold
        // or warm, so the outcome-identity check trivially holds, and
        // the artifact must carry one resident entry per run.
        let timeout = Duration::from_millis(1);
        let runs = run_corpus_warm(2, timeout, 1).expect("the specs/ corpus loads");
        assert_eq!(runs.len(), 2);
        warm_outcomes_match(&runs[0], &runs[1]).expect("1 ms runs agree");
        let json = batch_report_json_runs(&runs, timeout);
        assert!(json.contains("\"warm_runs\": 1"));
        assert!(json.contains("\"warm\": false"));
        assert!(json.contains("\"warm\": true"));
        assert!(json.contains("\"outcomes_match\": true"));
        assert!(!json.contains("\"warm_min_wall_secs\": null"));
        // The per-goal body is the cold run's; the parser still sees
        // exactly one entry per goal.
        assert_eq!(parse_batch_json(&json).len(), runs[0].outcomes.len());
    }

    #[test]
    fn phases_survive_the_goal_line_round_trip() {
        // A goal line as batch_report_json emits it (phases last, so the
        // flat field extractors never cut inside the nested object).
        let profile = PhaseProfile::parse_json(
            "{\"sat\": {\"secs\": 1.25, \"count\": 46, \"max_secs\": 0.5}, \
             \"lia\": {\"secs\": 0.75, \"count\": 43, \"max_secs\": 0.25}}",
        )
        .expect("hand-written phases JSON parses");
        let line = format!(
            "    {{\"file\": \"specs/take.sq\", \"name\": \"take\", \"solved\": true, \
             \"time_secs\": 2.5, \"phases\": {}}},",
            profile.to_json()
        );
        let goals = parse_batch_json(&line);
        assert_eq!(goals.len(), 1);
        let back = goals[0].phases.as_ref().expect("phases round-trip");
        assert_eq!(back.counts(), profile.counts());
        assert!((goals[0].time_secs - 2.5).abs() < 1e-9, "flat field intact");
        // v1 artifacts (no stamp, no phases) parse with phases absent.
        let v1 = "{\"file\": \"a.sq\", \"name\": \"g\", \"solved\": false, \"time_secs\": 0.0}";
        assert_eq!(batch_schema_version(v1), 1);
        assert!(parse_batch_json(v1)[0].phases.is_none());
    }

    #[test]
    fn time_regression_gate_has_ratio_and_absolute_floors() {
        assert!(is_time_regression(1.0, 2.0), "2x and +1s: regression");
        assert!(!is_time_regression(1.0, 1.4), "under the 1.5x ratio floor");
        assert!(
            !is_time_regression(0.1, 0.4),
            "4x but under the 0.5s absolute floor"
        );
        assert!(!is_time_regression(10.0, 9.0), "faster is never flagged");
    }

    #[test]
    fn fuzz_summary_round_trips_through_the_line_scanner() {
        // The exact shape `synquid_oracle::summary_json` emits: header
        // counters on their own lines, one goal per line, optional
        // skipped / violations / differential fields.
        let artifact = concat!(
            "{\n",
            "  \"seed\": 42,\n",
            "  \"cases\": 25,\n",
            "  \"total_violations\": 1,\n",
            "  \"total_divergences\": 0,\n",
            "  \"goals\": [\n",
            "    {\"goal\": \"append\", \"source\": \"specs/append.sq\", \"skipped\": \"synthesis failed or timed out\"},\n",
            "    {\"goal\": \"length\", \"source\": \"specs/length.sq\", \"pass\": 25, \"violation\": 0, \"crash\": 0, \"gave_up\": 0, \"undecidable\": 0, \"rejected\": 3},\n",
            "    {\"goal\": \"drop\", \"source\": \"specs/drop.sq\", \"pass\": 24, \"violation\": 1, \"crash\": 0, \"gave_up\": 0, \"undecidable\": 0, \"rejected\": 147, \"violations\": [{\"case\": 7, \"kind\": \"violation\", \"shrunk\": [\"0\", \"Nil\"]}]}\n",
            "  ]\n",
            "}\n",
        );
        let summary = parse_fuzz_json(artifact);
        assert_eq!(summary.seed, 42);
        assert_eq!(summary.cases, 25);
        assert_eq!(summary.total_violations, 1);
        assert_eq!(summary.total_divergences, 0);
        assert_eq!(summary.goals.len(), 3);
        assert_eq!(
            summary.goals[0].skipped.as_deref(),
            Some("synthesis failed or timed out")
        );
        assert_eq!(summary.goals[1].pass, 25);
        assert_eq!(summary.goals[1].rejected, 3);
        // The scalar "violation" count must not be confused with the
        // "violations" witness array on the same line.
        assert_eq!(summary.goals[2].violation, 1);
        assert_eq!(summary.goals[2].pass, 24);
        let table = format_fuzz_summary(&summary);
        assert!(table.contains("skipped"));
        assert!(table.contains("1 violation(s)"));
    }

    #[test]
    fn json_escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn table1_report_includes_all_rows_without_running() {
        // Zero-second timeout: transcribed rows fail fast, but the report
        // structure still covers all 64 benchmarks.
        let rows = run_table1(Duration::from_millis(1), false);
        assert_eq!(rows.len(), 64);
        let text = format_table1(&rows);
        assert!(text.contains("not transcribed"));
        assert!(text.contains("replicate"));
    }

    #[test]
    fn fig7_report_formats_every_point() {
        // A 1-millisecond budget keeps this a pure structure test: the
        // timing columns of Fig. 7 are produced by the `report` binary.
        let points = run_fig7(2, Duration::from_millis(1));
        assert_eq!(points.len(), 2);
        let text = format_fig7(&points);
        assert!(text.contains("max2"));
        assert!(text.contains("array_search2"));
    }
}
