//! Solver-microbenchmark fixtures: real DPLL(T)/LIA/MUS workloads.
//!
//! Each fixture is a verification condition (or MUS-enumeration problem)
//! captured from an actual synthesis run via the structured event sink
//! (`smt_query` events record every query slower than 25 ms together
//! with its formulas) and transcribed into `Term` builders. The sources:
//!
//! * `take.sq` at bounds (3,1) — the goal whose phase split the PR 5
//!   manual profile measured;
//! * `insert_sorted.sq` under the default portfolio;
//! * `double.sq` under the default portfolio.
//!
//! The captured variable names (`__m2_Cons_1_1`, …) are shortened for
//! readability, which does not change solver behaviour: encoding is
//! structural and name-independent. Expected verdicts are semantic
//! (`Sat`/`Unsat` are pure functions of the formula), so the harness can
//! assert them on every iteration against a fresh solver.

use synquid_logic::{Sort, Term};

/// What kind of solver work a fixture exercises, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// A full `sat(antecedent ∧ ¬consequent)` validity query: SAT
    /// skeleton search plus LIA theory checks plus core shrinking.
    Query,
    /// MARCO MUS enumeration with the SMT solver as the subset oracle.
    Mus,
}

/// The problem a fixture poses to the solver.
pub enum Workload {
    /// Check `sat(antecedent ∧ ¬consequent)`.
    Query {
        /// Left-hand side of the entailment.
        antecedent: Term,
        /// Right-hand side of the entailment.
        consequent: Term,
    },
    /// Enumerate the MUSes of `background ∧ soft` (MARCO over the SMT
    /// oracle).
    Mus {
        /// The fixed unsatisfiable-making context.
        background: Term,
        /// The candidate atoms subsets are drawn from.
        soft: Vec<Term>,
    },
}

/// One transcribed workload.
pub struct Fixture {
    /// Stable fixture name (appears in `BENCH_solver.json`).
    pub name: &'static str,
    /// Which solver path it exercises.
    pub kind: WorkloadKind,
    /// Where it was captured from.
    pub source: &'static str,
    /// Builds the problem (fresh terms each call, so every benchmark
    /// iteration starts from an identical, unshared formula).
    pub build: fn() -> Workload,
    /// Expected verdict for queries: `true` = Unsat (valid entailment).
    /// For MUS fixtures: `true` = at least one MUS must be reported.
    pub expect_unsat: bool,
}

fn list() -> Sort {
    Sort::data("List", vec![Sort::var("a")])
}

fn ilist() -> Sort {
    Sort::data("IList", vec![])
}

fn len(t: Term) -> Term {
    Term::app("len", vec![t], Sort::Int)
}

fn ilen(t: Term) -> Term {
    Term::app("ilen", vec![t], Sort::Int)
}

fn elems(t: Term) -> Term {
    Term::app("elems", vec![t], Sort::set(Sort::var("a")))
}

fn ielems(t: Term) -> Term {
    Term::app("ielems", vec![t], Sort::set(Sort::Int))
}

fn lvar(name: &str) -> Term {
    Term::var(name, list())
}

fn ivar(name: &str) -> Term {
    Term::var(name, Sort::Int)
}

fn avar(name: &str) -> Term {
    Term::var(name, Sort::var("a"))
}

fn single(elem: Term) -> Term {
    Term::singleton(Sort::var("a"), elem)
}

fn isingle(elem: Term) -> Term {
    Term::singleton(Sort::Int, elem)
}

/// `take.sq` (3,1): the liquid-abduction guard query for the recursive
/// branch — LIA-heavy with a few measure atoms; the canonical "first
/// check" workload of the DPLL(T) main loop. Captured verdict: Sat.
fn take_guard_abduction() -> Workload {
    let (xs, xs1) = (lvar("xs"), lvar("xs1"));
    let (n, m, zero, nu) = (
        ivar("n"),
        ivar("m"),
        ivar("zero"),
        Term::value_var(Sort::Int),
    );
    let a = Term::conjunction([
        len(xs.clone()).eq(len(xs1.clone()).plus(Term::int(1))),
        elems(xs.clone()).eq(elems(xs1.clone()).union(single(avar("x0")))),
        len(xs.clone()).ge(n.clone()),
        n.clone().ge(Term::int(0)),
        m.clone().eq(n.clone().plus(Term::int(1))),
        len(xs).ge(Term::int(0)),
        len(xs1).ge(Term::int(0)),
        nu.clone().eq(m.minus(Term::int(1))),
        zero.clone().le(n.clone()),
        Term::int(0).le(zero.clone()),
        Term::int(0).le(n.clone()),
        zero.clone().neq(n.clone()),
        zero.clone().neq(Term::int(0)),
        n.clone().neq(zero.clone()),
        n.clone().neq(Term::int(0)),
        Term::int(0).neq(zero.clone()),
        Term::int(0).neq(n.clone()),
        zero.clone().lt(n.clone()),
        Term::int(0).lt(zero),
        nu.clone()
            .ge(Term::int(0))
            .and(Term::int(0).le(nu.clone()).and(nu.lt(n)))
            .not(),
    ]);
    Workload::Query {
        antecedent: a,
        consequent: Term::ff(),
    }
}

/// `take.sq` (3,1): the measure-heavy subtyping VC for a doubly nested
/// `Cons` candidate — deep set reasoning over `elems`, the encoding- and
/// shrink-heavy workload. Captured verdict: Sat (subtyping fails).
fn take_cons_subtype() -> Workload {
    let (xs, xs1) = (lvar("xs"), lvar("xs1"));
    let (c11, c10, c018, nil) = (lvar("c11"), lvar("c10"), lvar("c018"), lvar("Nil"));
    let (n, t6) = (ivar("n"), ivar("t6"));
    let nu = Term::value_var(list());
    let a = Term::conjunction([
        len(xs.clone()).eq(len(xs1.clone()).plus(Term::int(1))),
        elems(xs.clone()).eq(elems(xs1.clone()).union(single(avar("x0")))),
        Term::int(0).lt(n.clone()),
        len(xs.clone()).ge(n.clone()),
        n.clone().ge(Term::int(0)),
        t6.clone().eq(n.minus(Term::int(1))),
        len(c11.clone()).eq(len(c10.clone()).plus(Term::int(1))),
        elems(c11.clone()).eq(elems(c10.clone()).union(single(avar("c00")))),
        elems(c10.clone()).eq(elems(nil.clone())),
        len(c10.clone()).eq(len(nil.clone())),
        len(c10.clone()).eq(Term::int(0)),
        elems(c10.clone()).eq(Term::empty_set(Sort::var("a"))),
        len(c018.clone()).eq(len(c10.clone()).plus(Term::int(1))),
        elems(c018.clone()).eq(elems(c10.clone()).union(single(avar("xs1e")))),
        len(xs).ge(Term::int(0)),
        len(xs1).ge(Term::int(0)),
        len(c11.clone()).ge(Term::int(0)),
        len(c10).ge(Term::int(0)),
        len(nil).ge(Term::int(0)),
        len(c018.clone()).ge(Term::int(0)),
        len(nu.clone()).ge(Term::int(0)),
        len(nu.clone()).eq(len(c11.clone()).plus(Term::int(1))),
        elems(nu.clone()).eq(elems(c11).union(single(avar("c018e")))),
    ]);
    Workload::Query {
        antecedent: a,
        consequent: len(nu).ge(t6),
    }
}

/// `take.sq` (3,1): the termination-bound VC whose path condition is
/// LIA-contradictory (`zero < n ∧ n ≤ 0 ∧ 0 < zero`) — the core-shrink
/// workload: DPLL(T) must find and minimize the conflict. Captured
/// verdict: Unsat.
fn take_rec_bound() -> Workload {
    let (c12, c10, nil) = (lvar("c12"), lvar("c10"), lvar("Nil"));
    let (n, t6, c05, zero) = (ivar("n"), ivar("t6"), ivar("c05"), ivar("zero"));
    let nu = Term::value_var(list());
    let a = Term::conjunction([
        Term::int(0).lt(n.clone()),
        t6.clone().eq(n.clone().minus(Term::int(1))),
        n.clone().ge(Term::int(0)),
        len(c12.clone()).eq(len(c10.clone()).plus(Term::int(1))),
        elems(c12.clone()).eq(elems(c10.clone()).union(single(avar("ne")))),
        elems(c10.clone()).eq(elems(nil.clone())),
        len(c10.clone()).eq(len(nil.clone())),
        len(c10.clone()).eq(Term::int(0)),
        elems(c10.clone()).eq(Term::empty_set(Sort::var("a"))),
        c05.clone().eq(Term::int(1).minus(Term::int(1))),
        len(c12.clone()).ge(Term::int(0)),
        len(c10).ge(Term::int(0)),
        len(nil).ge(Term::int(0)),
        len(nu.clone()).ge(Term::int(0)),
        len(nu.clone()).eq(len(c12.clone()).plus(Term::int(1))),
        elems(nu.clone()).eq(elems(c12).union(single(avar("c05e")))),
        zero.clone().le(n.clone()),
        n.le(Term::int(0)),
        zero.clone().lt(ivar("n")),
        Term::int(0).lt(zero),
        len(nu).ge(t6).not(),
    ]);
    Workload::Query {
        antecedent: a,
        consequent: Term::ff(),
    }
}

/// `insert_sorted.sq`: the round-trip termination check for the
/// recursive call in the `ICons` branch — integer-set reasoning
/// (`ielems`) with a contradictory `zero` valuation. Captured verdict:
/// Unsat.
fn insert_round_trip() -> Workload {
    let (xs, xs1, c10, inil) = (
        Term::var("xs", ilist()),
        Term::var("xs1", ilist()),
        Term::var("c10", ilist()),
        Term::var("INil", ilist()),
    );
    let (x, x0, zero) = (ivar("x"), ivar("x0"), ivar("zero"));
    let nu = Term::value_var(ilist());
    let a = Term::conjunction([
        ilen(xs.clone()).eq(ilen(xs1.clone()).plus(Term::int(1))),
        ielems(xs.clone()).eq(ielems(xs1.clone()).union(isingle(x0.clone()))),
        x.clone().le(x0.clone()).and(x.clone().neq(x0)),
        ielems(c10.clone()).eq(ielems(inil.clone())),
        ilen(c10.clone()).eq(ilen(inil.clone())),
        ilen(c10.clone()).eq(Term::int(0)),
        ielems(c10.clone()).eq(Term::empty_set(Sort::Int)),
        ilen(xs.clone()).ge(Term::int(0)),
        ilen(xs1).ge(Term::int(0)),
        ilen(c10.clone()).ge(Term::int(0)),
        ilen(inil).ge(Term::int(0)),
        ilen(nu.clone()).ge(Term::int(0)),
        ilen(nu.clone()).eq(ilen(c10.clone()).plus(Term::int(1))),
        ielems(nu.clone()).eq(ielems(c10).union(isingle(x))),
        zero.clone().le(Term::int(0)),
        Term::int(0).le(zero.clone()),
        zero.lt(Term::int(0)),
        Term::int(0)
            .le(ilen(nu.clone()))
            .and(ilen(nu).lt(ilen(xs)))
            .not(),
    ]);
    Workload::Query {
        antecedent: a,
        consequent: Term::ff(),
    }
}

/// `double.sq`: the MUSFIX strengthening problem for the `Cons` branch —
/// which candidate qualifier atoms make the violated VC valid? The
/// background is the branch VC with its conclusion negated; the soft
/// atoms are the abduction candidates over `n`. At least one MUS exists
/// (`n ≤ 0` alone), so the harness asserts non-emptiness.
fn double_branch_mus() -> Workload {
    let nu = Term::value_var(list());
    let n = ivar("n");
    let background = len(nu.clone())
        .eq(Term::int(0))
        .and(len(nu).eq(n.clone().plus(n.clone())).not())
        .and(Term::int(0).le(n.clone()));
    let soft = vec![
        n.clone().le(Term::int(0)),
        n.clone().neq(Term::int(0)),
        Term::int(0).le(n.clone()),
        Term::int(0).lt(n),
    ];
    Workload::Mus { background, soft }
}

/// `take.sq` (3,1): the MUSFIX strengthening problem for the `Nil`
/// branch — the shrink-loop workload the shared-encoding MUS oracle
/// targets. The background is the branch VC (measure context included)
/// with its conclusion negated; the soft atoms are the liquid-abduction
/// candidate qualifiers over `n`, `m`, and `len xs`, most of them
/// irrelevant — so the oracle must grow/shrink through many subset
/// checks against the same conjunction. `{n ≤ 0}` is a MUS (with the
/// background's `0 ≤ n` it forces `n = 0`, contradicting
/// `¬(len ν = n)`), so the harness asserts non-emptiness.
fn take_nil_guard_mus() -> Workload {
    let (xs, xs1) = (lvar("xs"), lvar("xs1"));
    let (n, m) = (ivar("n"), ivar("m"));
    let nu = Term::value_var(list());
    let background = Term::conjunction([
        len(xs.clone()).eq(len(xs1.clone()).plus(Term::int(1))),
        elems(xs.clone()).eq(elems(xs1.clone()).union(single(avar("x0")))),
        len(xs.clone()).ge(n.clone()),
        len(xs.clone()).ge(Term::int(0)),
        len(xs1.clone()).ge(Term::int(0)),
        len(nu.clone()).ge(Term::int(0)),
        len(nu.clone()).eq(Term::int(0)),
        Term::int(0).le(n.clone()),
        len(nu).eq(n.clone()).not(),
    ]);
    let soft = vec![
        n.clone().le(Term::int(0)),
        n.clone().neq(Term::int(0)),
        Term::int(0).le(n.clone()),
        Term::int(0).lt(n.clone()),
        m.clone().le(n.clone()),
        n.clone().le(m.clone()),
        m.clone().neq(n.clone()),
        len(xs.clone()).le(n.clone()),
        n.lt(len(xs)),
        Term::int(0).lt(m),
    ];
    Workload::Mus { background, soft }
}

/// Every transcribed workload, in a stable report order.
pub fn all() -> Vec<Fixture> {
    vec![
        Fixture {
            name: "take_guard_abduction",
            kind: WorkloadKind::Query,
            source: "take.sq (3,1)",
            build: take_guard_abduction,
            expect_unsat: false,
        },
        Fixture {
            name: "take_cons_subtype",
            kind: WorkloadKind::Query,
            source: "take.sq (3,1)",
            build: take_cons_subtype,
            expect_unsat: false,
        },
        Fixture {
            name: "take_rec_bound",
            kind: WorkloadKind::Query,
            source: "take.sq (3,1)",
            build: take_rec_bound,
            expect_unsat: true,
        },
        Fixture {
            name: "insert_round_trip",
            kind: WorkloadKind::Query,
            source: "insert_sorted.sq",
            build: insert_round_trip,
            expect_unsat: true,
        },
        Fixture {
            name: "double_branch_mus",
            kind: WorkloadKind::Mus,
            source: "double.sq",
            build: double_branch_mus,
            expect_unsat: true,
        },
        Fixture {
            name: "take_nil_guard_mus",
            kind: WorkloadKind::Mus,
            source: "take.sq (3,1)",
            build: take_nil_guard_mus,
            expect_unsat: true,
        },
    ]
}
