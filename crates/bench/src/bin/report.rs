//! Regenerates the paper's evaluation artifacts.
//!
//! ```text
//! report table1 [--ablations] [--timeout SECS]
//! report table2 [--timeout SECS]
//! report fig7   [--max-n N]   [--timeout SECS]
//! report batch  [--jobs N]    [--timeout SECS] [--out PATH]
//!               [--compare OLD.json] [--readme] [--warm-runs N]
//! report trace  <TRACE.jsonl> [--perfetto OUT.json] [--top K]
//! report solver-bench [--smoke] [--iters N] [--out PATH]
//! report fuzz   <SUMMARY.json>
//! report all
//! ```
//!
//! `batch` runs the whole `specs/` corpus through the parallel engine
//! (with span profiling on, so every goal entry carries its per-phase
//! timing split) and writes the machine-readable `BENCH_pr9.json`
//! timing report (per goal: solved/timings/winning rung/budget-ledger
//! accounting/enumeration and incremental-solver counters; plus the
//! validity-cache counters). `--compare` prints per-goal deltas against
//! a previous artifact (solved↔timeout flips, time ratios, phase-split
//! movements when both artifacts carry phase data) and **exits nonzero
//! if a previously solved goal regressed to a timeout, a still-solved
//! goal got more than 1.5× slower, or a still-solved goal's LIA phase
//! regressed past the same thresholds**; `--readme` prints the markdown
//! corpus table embedded in the README's "Reproduction status" section.
//! `--warm-runs N` replays the whole corpus N more times against the
//! same resident session (schema v3 `resident` block: per-run session
//! counters plus cold-vs-warm wall times) and **exits nonzero if any
//! warm replay changed an outcome or failed to beat the cold run's
//! validity hit rate** — the residency payoff and soundness gates.
//!
//! `trace` is offline forensics over a `--trace-out` JSONL artifact
//! (e.g. the batch job's): per-goal budget attribution by rung × phase,
//! the slowest SMT queries, the candidate-rejection taxonomy, and cache
//! hit rates; a malformed stream (unknown event kind, missing envelope
//! field) exits nonzero, which is what CI keys on. `--perfetto` also
//! writes Chrome trace-event JSON loadable in `chrome://tracing`.
//!
//! `solver-bench` times the captured DPLL(T)/LIA/MUS workloads of
//! `synquid_bench::fixtures` against fresh solver instances and writes
//! `BENCH_solver.json` (`--smoke` is the CI mode: 3 iterations per
//! fixture, verdicts asserted).
//!
//! `fuzz` re-parses a `synquid fuzz --out` summary artifact and renders
//! the per-goal oracle table; it exits nonzero when the artifact records
//! any postcondition violation or differential divergence, so CI can
//! gate on the uploaded artifact independently of the run that wrote it.

use std::time::Duration;
use synquid_bench::{
    batch_report_json_runs, compare_batch, corpus_markdown_table, format_fig7, format_fuzz_summary,
    format_table1, format_table2, parse_batch_json, parse_fuzz_json, run_corpus_warm, run_fig7,
    run_table1, run_table2, warm_outcomes_match,
};

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let timeout = Duration::from_secs(parse_flag(&args, "--timeout").unwrap_or(20));
    let ablations = args.iter().any(|a| a == "--ablations");
    let max_n = parse_flag(&args, "--max-n").unwrap_or(4) as usize;

    match which {
        "table1" => {
            println!("== Table 1: benchmarks and Synquid results ==");
            println!("{}", format_table1(&run_table1(timeout, ablations)));
        }
        "table2" => {
            println!("== Table 2: comparison to other synthesizers ==");
            println!("{}", format_table2(&run_table2(timeout)));
        }
        "fig7" => {
            println!("== Figure 7: non-recursive (SyGuS) benchmarks ==");
            println!("{}", format_fig7(&run_fig7(max_n, timeout)));
        }
        "batch" => {
            let jobs = parse_flag(&args, "--jobs").unwrap_or(4) as usize;
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "BENCH_pr9.json".to_string());
            let compare = args
                .iter()
                .position(|a| a == "--compare")
                .and_then(|i| args.get(i + 1))
                .cloned();
            let readme = args.iter().any(|a| a == "--readme");
            let warm_runs = parse_flag(&args, "--warm-runs").unwrap_or(0) as usize;
            // Phase splits ride the artifact (schema v2): profile every
            // batch run so `--compare` can show where time moved.
            synquid_telemetry::set_profiling(true);
            eprintln!(
                "== Batch: specs/ corpus through the engine ({jobs} worker(s), {}s/goal, {warm_runs} warm replay(s)) ==",
                timeout.as_secs()
            );
            match run_corpus_warm(jobs, timeout, warm_runs) {
                Ok(runs) => {
                    let report = &runs[0];
                    for o in &report.outcomes {
                        eprintln!(
                            "  {:<45} {}",
                            synquid_bench::goal_label(&o.result.name, &o.source),
                            if o.result.solved {
                                format!("{:.2}s", o.result.time_secs)
                            } else if o.result.timed_out {
                                "timeout".to_string()
                            } else {
                                "no solution".to_string()
                            },
                        );
                    }
                    let json = batch_report_json_runs(&runs, timeout);
                    if let Err(e) = std::fs::write(&out, &json) {
                        eprintln!("failed to write {out}: {e}");
                        std::process::exit(1);
                    }
                    let solved = report.outcomes.iter().filter(|o| o.result.solved).count();
                    eprintln!(
                        "wrote {out}: {solved}/{} goals solved, cache hit rate {:.1}%",
                        report.outcomes.len(),
                        100.0 * report.cache.hit_rate()
                    );
                    // The residency gates: every warm replay must
                    // reproduce the cold outcomes exactly, and its
                    // cross-run validity hit rate must beat the cold
                    // within-run rate (otherwise the resident session
                    // carried nothing between runs).
                    for (i, warm) in runs[1..].iter().enumerate() {
                        let cold_rate = report.session.validity.hit_rate();
                        let warm_rate = warm.session.validity.hit_rate();
                        eprintln!(
                            "warm run {}: wall {:.1}s vs cold {:.1}s, validity hit rate {:.1}% vs cold {:.1}%",
                            i + 1,
                            warm.wall_secs,
                            report.wall_secs,
                            100.0 * warm_rate,
                            100.0 * cold_rate
                        );
                        if let Err(e) = warm_outcomes_match(report, warm) {
                            eprintln!("warm run {} changed outcomes: {e}", i + 1);
                            std::process::exit(1);
                        }
                        if warm_rate <= cold_rate {
                            eprintln!(
                                "warm run {} validity hit rate {:.4} did not beat the cold rate {:.4}",
                                i + 1,
                                warm_rate,
                                cold_rate
                            );
                            std::process::exit(1);
                        }
                    }
                    if readme {
                        println!("{}", corpus_markdown_table(report, timeout));
                    }
                    if let Some(old_path) = compare {
                        match std::fs::read_to_string(&old_path) {
                            Ok(text) => {
                                let deltas = compare_batch(&parse_batch_json(&text), report);
                                println!(
                                    "== Deltas against {old_path} (schema v{}) ==\n{}",
                                    synquid_bench::batch_schema_version(&text),
                                    deltas.text
                                );
                                if deltas.regressed > 0 {
                                    eprintln!(
                                        "{} goal(s) solved in {old_path} regressed to unsolved",
                                        deltas.regressed
                                    );
                                    std::process::exit(1);
                                }
                                if deltas.time_regressed > 0 {
                                    eprintln!(
                                        "{} still-solved goal(s) got more than 1.5x slower than {old_path}",
                                        deltas.time_regressed
                                    );
                                    std::process::exit(1);
                                }
                                if deltas.lia_time_regressed > 0 {
                                    eprintln!(
                                        "{} still-solved goal(s) regressed in LIA-phase time against {old_path}",
                                        deltas.lia_time_regressed
                                    );
                                    std::process::exit(1);
                                }
                            }
                            Err(e) => {
                                eprintln!("cannot read {old_path}: {e}");
                                std::process::exit(1);
                            }
                        }
                    }
                }
                Err(e) => {
                    eprintln!("batch failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "trace" => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!("usage: report trace <TRACE.jsonl> [--perfetto OUT.json] [--top K]");
                std::process::exit(2);
            };
            let top_k = parse_flag(&args, "--top").unwrap_or(5) as usize;
            let perfetto = args
                .iter()
                .position(|a| a == "--perfetto")
                .and_then(|i| args.get(i + 1))
                .cloned();
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            let trace = match synquid_trace::parse_trace(&text) {
                Ok(trace) => trace,
                Err(e) => {
                    eprintln!("{path}: malformed trace: {e}");
                    std::process::exit(1);
                }
            };
            let report = synquid_trace::analyze(&trace);
            print!("{}", report.render(top_k));
            if let Some(out) = perfetto {
                let json = synquid_trace::to_chrome_trace(&trace);
                if let Err(e) = std::fs::write(&out, &json) {
                    eprintln!("failed to write {out}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {out} (load in chrome://tracing or ui.perfetto.dev)");
            }
        }
        "solver-bench" => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let iters = parse_flag(&args, "--iters").unwrap_or(if smoke { 3 } else { 10 }) as usize;
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .cloned()
                .unwrap_or_else(|| "BENCH_solver.json".to_string());
            synquid_telemetry::set_profiling(true);
            eprintln!("== Solver microbenchmarks ({iters} iteration(s) per fixture) ==");
            let results = synquid_bench::solver_bench::run_all(iters);
            println!("{}", synquid_bench::solver_bench::format_results(&results));
            let json = synquid_bench::solver_bench::solver_report_json(&results);
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("failed to write {out}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {out}: {} fixture(s), all verdicts ok", results.len());
        }
        "fuzz" => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!("usage: report fuzz <SUMMARY.json>");
                std::process::exit(2);
            };
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            let summary = parse_fuzz_json(&text);
            if summary.goals.is_empty() {
                eprintln!("{path}: no per-goal entries — not a fuzz summary?");
                std::process::exit(1);
            }
            print!("{}", format_fuzz_summary(&summary));
            if summary.total_violations > 0 || summary.total_divergences > 0 {
                eprintln!(
                    "{} violation(s) and {} divergence(s) recorded in {path}",
                    summary.total_violations, summary.total_divergences
                );
                std::process::exit(1);
            }
        }
        "all" => {
            println!("== Table 1: benchmarks and Synquid results ==");
            println!("{}", format_table1(&run_table1(timeout, ablations)));
            println!("== Table 2: comparison to other synthesizers ==");
            println!("{}", format_table2(&run_table2(timeout)));
            println!("== Figure 7: non-recursive (SyGuS) benchmarks ==");
            println!("{}", format_fig7(&run_fig7(max_n, timeout)));
        }
        other => {
            eprintln!(
                "unknown report '{other}': expected table1, table2, fig7, batch, trace, solver-bench, fuzz, or all"
            );
            std::process::exit(2);
        }
    }
}
