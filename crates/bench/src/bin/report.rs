//! Regenerates the paper's evaluation artifacts.
//!
//! ```text
//! report table1 [--ablations] [--timeout SECS]
//! report table2 [--timeout SECS]
//! report fig7   [--max-n N]   [--timeout SECS]
//! report all
//! ```

use std::time::Duration;
use synquid_bench::{format_fig7, format_table1, format_table2, run_fig7, run_table1, run_table2};

fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let timeout = Duration::from_secs(parse_flag(&args, "--timeout").unwrap_or(20));
    let ablations = args.iter().any(|a| a == "--ablations");
    let max_n = parse_flag(&args, "--max-n").unwrap_or(4) as usize;

    match which {
        "table1" => {
            println!("== Table 1: benchmarks and Synquid results ==");
            println!("{}", format_table1(&run_table1(timeout, ablations)));
        }
        "table2" => {
            println!("== Table 2: comparison to other synthesizers ==");
            println!("{}", format_table2(&run_table2(timeout)));
        }
        "fig7" => {
            println!("== Figure 7: non-recursive (SyGuS) benchmarks ==");
            println!("{}", format_fig7(&run_fig7(max_n, timeout)));
        }
        "all" => {
            println!("== Table 1: benchmarks and Synquid results ==");
            println!("{}", format_table1(&run_table1(timeout, ablations)));
            println!("== Table 2: comparison to other synthesizers ==");
            println!("{}", format_table2(&run_table2(timeout)));
            println!("== Figure 7: non-recursive (SyGuS) benchmarks ==");
            println!("{}", format_fig7(&run_fig7(max_n, timeout)));
        }
        other => {
            eprintln!("unknown report '{other}': expected table1, table2, fig7, or all");
            std::process::exit(2);
        }
    }
}
