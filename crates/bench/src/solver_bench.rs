//! The solver-microbenchmark harness: times the [`crate::fixtures`]
//! workloads against a fresh solver instance per iteration and emits the
//! `BENCH_solver.json` artifact.
//!
//! Two ways to run it:
//!
//! * **smoke mode** (`report solver-bench --smoke`, used by CI): a few
//!   iterations per fixture, verdicts asserted, artifact written — a
//!   dependency-free regression canary that finishes in seconds;
//! * **criterion mode** (`cargo bench -p synquid-bench --features
//!   criterion` after uncommenting the dev-dependency): statistically
//!   rigorous timing of the same fixtures, for local investigation.
//!
//! Every iteration rebuilds the formula and a fresh [`Smt`] instance, so
//! measurements never benefit from the validity cache or the lemma store
//! of a previous iteration: what is timed is the full encode → DPLL(T) →
//! core-shrink pipeline. Phase splits come from
//! [`synquid_solver::SmtStats::phases`] when span profiling is enabled
//! (the smoke runner enables it).

use crate::fixtures::{self, Fixture, Workload, WorkloadKind};
use std::collections::BTreeSet;
use std::time::Instant;
use synquid_solver::{enumerate_mus_smt, MusConfig, Smt};
use synquid_telemetry::PhaseProfile;

/// Timing summary of one fixture.
pub struct FixtureResult {
    /// The fixture that ran.
    pub name: &'static str,
    /// Query or MUS enumeration.
    pub kind: WorkloadKind,
    /// Where the workload was captured from.
    pub source: &'static str,
    /// Iterations timed.
    pub iterations: usize,
    /// Fastest iteration, seconds.
    pub min_secs: f64,
    /// Mean iteration, seconds.
    pub mean_secs: f64,
    /// Per-phase solver split summed over all iterations (empty when
    /// span profiling is disabled).
    pub phases: PhaseProfile,
    /// Whether every iteration produced the expected verdict.
    pub verdicts_ok: bool,
}

/// Runs one fixture for `iterations` iterations against fresh solvers.
pub fn run_fixture(fixture: &Fixture, iterations: usize) -> FixtureResult {
    let mut times = Vec::with_capacity(iterations);
    let mut phases = PhaseProfile::default();
    let mut verdicts_ok = true;
    for _ in 0..iterations.max(1) {
        let workload = (fixture.build)();
        let mut smt = Smt::new();
        let started = Instant::now();
        let ok = match workload {
            Workload::Query {
                antecedent,
                consequent,
            } => {
                let unsat = smt.entails(&antecedent, &consequent);
                unsat == fixture.expect_unsat
            }
            Workload::Mus { background, soft } => {
                let muses = enumerate_mus_smt(
                    &mut smt,
                    &background,
                    &soft,
                    &BTreeSet::new(),
                    MusConfig::default(),
                );
                muses.is_empty() != fixture.expect_unsat
            }
        };
        times.push(started.elapsed().as_secs_f64());
        phases.merge(&smt.stats().phases);
        verdicts_ok &= ok;
    }
    let min_secs = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_secs = times.iter().sum::<f64>() / times.len() as f64;
    FixtureResult {
        name: fixture.name,
        kind: fixture.kind,
        source: fixture.source,
        iterations: times.len(),
        min_secs,
        mean_secs,
        phases,
        verdicts_ok,
    }
}

/// Runs every fixture. Panics if any fixture's verdict deviates from the
/// captured one — a wrong verdict means the transcription (or the
/// solver) broke, and timing a wrong answer is worse than failing.
pub fn run_all(iterations: usize) -> Vec<FixtureResult> {
    fixtures::all()
        .iter()
        .map(|f| {
            let result = run_fixture(f, iterations);
            assert!(
                result.verdicts_ok,
                "fixture {} produced an unexpected verdict",
                f.name
            );
            result
        })
        .collect()
}

/// Renders the results as the `BENCH_solver.json` artifact
/// (schema-versioned like the batch report; hand-rolled JSON because the
/// workspace resolves offline).
pub fn solver_report_json(results: &[FixtureResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"report\": \"BENCH_solver\",\n");
    out.push_str(&format!(
        "  \"schema_version\": {},\n",
        crate::BENCH_SCHEMA_VERSION
    ));
    out.push_str("  \"fixtures\": [\n");
    for (i, r) in results.iter().enumerate() {
        let kind = match r.kind {
            WorkloadKind::Query => "query",
            WorkloadKind::Mus => "mus",
        };
        let phases = if r.phases.is_empty() {
            String::new()
        } else {
            format!(", \"phases\": {}", r.phases.to_json())
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{kind}\", \"source\": \"{}\", \"iterations\": {}, \"min_secs\": {:.6}, \"mean_secs\": {:.6}{phases}}}{}\n",
            r.name,
            r.source,
            r.iterations,
            r.min_secs,
            r.mean_secs,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Formats a human-readable table of the results.
pub fn format_results(results: &[FixtureResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<6} {:>6} {:>12} {:>12}\n",
        "fixture", "kind", "iters", "min(ms)", "mean(ms)"
    ));
    for r in results {
        let kind = match r.kind {
            WorkloadKind::Query => "query",
            WorkloadKind::Mus => "mus",
        };
        out.push_str(&format!(
            "{:<24} {:<6} {:>6} {:>12.3} {:>12.3}\n",
            r.name,
            kind,
            r.iterations,
            r.min_secs * 1e3,
            r.mean_secs * 1e3
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_single_iteration_matches_captured_verdicts() {
        // One iteration per fixture: verdicts are asserted inside
        // run_all, so this test fails if a transcription drifts from its
        // captured verdict.
        let results = run_all(1);
        assert_eq!(results.len(), fixtures::all().len());
        let json = solver_report_json(&results);
        assert!(json.contains("\"report\": \"BENCH_solver\""));
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("take_guard_abduction"));
        assert!(json.contains("double_branch_mus"));
        let table = format_results(&results);
        assert!(table.contains("insert_round_trip"));
    }
}
