//! The solver-microbenchmark harness: times the [`crate::fixtures`]
//! workloads against a fresh solver instance per iteration and emits the
//! `BENCH_solver.json` artifact.
//!
//! Two ways to run it:
//!
//! * **smoke mode** (`report solver-bench --smoke`, used by CI): a few
//!   iterations per fixture, verdicts asserted, artifact written — a
//!   dependency-free regression canary that finishes in seconds;
//! * **criterion mode** (`cargo bench -p synquid-bench --features
//!   criterion` after uncommenting the dev-dependency): statistically
//!   rigorous timing of the same fixtures, for local investigation.
//!
//! Every iteration rebuilds the formula and a fresh [`Smt`] instance, so
//! measurements never benefit from the validity cache or the lemma store
//! of a previous iteration: what is timed is the full encode → DPLL(T) →
//! core-shrink pipeline. Phase splits come from
//! [`synquid_solver::SmtStats::phases`] when span profiling is enabled
//! (the smoke runner enables it).

use crate::fixtures::{self, Fixture, Workload, WorkloadKind};
use std::collections::BTreeSet;
use std::time::Instant;
use synquid_solver::{enumerate_mus_smt, MusConfig, Smt};
use synquid_telemetry::PhaseProfile;

/// Timing summary of one fixture: the incremental (warm-tableau, shared
/// MUS encoding) path and the from-scratch baseline, A/B'd in one run.
pub struct FixtureResult {
    /// The fixture that ran.
    pub name: &'static str,
    /// Query or MUS enumeration.
    pub kind: WorkloadKind,
    /// Where the workload was captured from.
    pub source: &'static str,
    /// Iterations timed (per mode).
    pub iterations: usize,
    /// Fastest iteration on the incremental path, seconds.
    pub min_secs: f64,
    /// Mean iteration on the incremental path, seconds.
    pub mean_secs: f64,
    /// Fastest iteration with `set_incremental_lia(false)` — the
    /// from-scratch per-check baseline this PR's tentpole replaces.
    pub baseline_min_secs: f64,
    /// Mean from-scratch iteration, seconds.
    pub baseline_mean_secs: f64,
    /// Per-phase solver split summed over the incremental iterations
    /// only (empty when span profiling is disabled).
    pub phases: PhaseProfile,
    /// Whether every iteration of both modes produced the expected
    /// verdict.
    pub verdicts_ok: bool,
}

impl FixtureResult {
    /// Old-vs-new speedup on fastest iterations (>1 means the
    /// incremental path wins).
    pub fn speedup(&self) -> f64 {
        if self.min_secs > 0.0 {
            self.baseline_min_secs / self.min_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Times one mode of one fixture; returns per-iteration times and
/// whether every verdict matched the captured one.
fn time_mode(
    fixture: &Fixture,
    iterations: usize,
    incremental_lia: bool,
    phases: Option<&mut PhaseProfile>,
) -> (Vec<f64>, bool) {
    let mut times = Vec::with_capacity(iterations);
    let mut verdicts_ok = true;
    let mut mode_phases = PhaseProfile::default();
    for _ in 0..iterations.max(1) {
        let workload = (fixture.build)();
        let mut smt = Smt::new();
        smt.set_incremental_lia(incremental_lia);
        let started = Instant::now();
        let ok = match workload {
            Workload::Query {
                antecedent,
                consequent,
            } => {
                let unsat = smt.entails(&antecedent, &consequent);
                unsat == fixture.expect_unsat
            }
            Workload::Mus { background, soft } => {
                let muses = enumerate_mus_smt(
                    &mut smt,
                    &background,
                    &soft,
                    &BTreeSet::new(),
                    MusConfig::default(),
                );
                muses.is_empty() != fixture.expect_unsat
            }
        };
        times.push(started.elapsed().as_secs_f64());
        mode_phases.merge(&smt.stats().phases);
        verdicts_ok &= ok;
    }
    if let Some(out) = phases {
        out.merge(&mode_phases);
    }
    (times, verdicts_ok)
}

/// Runs one fixture for `iterations` iterations per mode against fresh
/// solvers: first the incremental path, then the from-scratch baseline.
pub fn run_fixture(fixture: &Fixture, iterations: usize) -> FixtureResult {
    let mut phases = PhaseProfile::default();
    let (new_times, new_ok) = time_mode(fixture, iterations, true, Some(&mut phases));
    let (old_times, old_ok) = time_mode(fixture, iterations, false, None);
    let min = |ts: &[f64]| ts.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = |ts: &[f64]| ts.iter().sum::<f64>() / ts.len() as f64;
    FixtureResult {
        name: fixture.name,
        kind: fixture.kind,
        source: fixture.source,
        iterations: new_times.len(),
        min_secs: min(&new_times),
        mean_secs: mean(&new_times),
        baseline_min_secs: min(&old_times),
        baseline_mean_secs: mean(&old_times),
        phases,
        verdicts_ok: new_ok && old_ok,
    }
}

/// Runs every fixture. Panics if any fixture's verdict deviates from the
/// captured one — a wrong verdict means the transcription (or the
/// solver) broke, and timing a wrong answer is worse than failing.
pub fn run_all(iterations: usize) -> Vec<FixtureResult> {
    fixtures::all()
        .iter()
        .map(|f| {
            let result = run_fixture(f, iterations);
            assert!(
                result.verdicts_ok,
                "fixture {} produced an unexpected verdict",
                f.name
            );
            result
        })
        .collect()
}

/// Renders the results as the `BENCH_solver.json` artifact
/// (schema-versioned like the batch report; hand-rolled JSON because the
/// workspace resolves offline).
pub fn solver_report_json(results: &[FixtureResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"report\": \"BENCH_solver\",\n");
    out.push_str(&format!(
        "  \"schema_version\": {},\n",
        crate::BENCH_SCHEMA_VERSION
    ));
    out.push_str("  \"fixtures\": [\n");
    for (i, r) in results.iter().enumerate() {
        let kind = match r.kind {
            WorkloadKind::Query => "query",
            WorkloadKind::Mus => "mus",
        };
        let phases = if r.phases.is_empty() {
            String::new()
        } else {
            format!(", \"phases\": {}", r.phases.to_json())
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{kind}\", \"source\": \"{}\", \"iterations\": {}, \"min_secs\": {:.6}, \"mean_secs\": {:.6}, \"baseline_min_secs\": {:.6}, \"baseline_mean_secs\": {:.6}, \"speedup\": {:.3}{phases}}}{}\n",
            r.name,
            r.source,
            r.iterations,
            r.min_secs,
            r.mean_secs,
            r.baseline_min_secs,
            r.baseline_mean_secs,
            r.speedup(),
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Formats a human-readable table of the results: from-scratch baseline
/// vs incremental path, with the per-fixture speedup ratio.
pub fn format_results(results: &[FixtureResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:<6} {:>6} {:>12} {:>12} {:>8}\n",
        "fixture", "kind", "iters", "old(ms)", "new(ms)", "ratio"
    ));
    for r in results {
        let kind = match r.kind {
            WorkloadKind::Query => "query",
            WorkloadKind::Mus => "mus",
        };
        out.push_str(&format!(
            "{:<24} {:<6} {:>6} {:>12.3} {:>12.3} {:>7.2}x\n",
            r.name,
            kind,
            r.iterations,
            r.baseline_min_secs * 1e3,
            r.min_secs * 1e3,
            r.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_single_iteration_matches_captured_verdicts() {
        // One iteration per fixture: verdicts are asserted inside
        // run_all, so this test fails if a transcription drifts from its
        // captured verdict.
        let results = run_all(1);
        assert_eq!(results.len(), fixtures::all().len());
        let json = solver_report_json(&results);
        assert!(json.contains("\"report\": \"BENCH_solver\""));
        assert!(json.contains(&format!(
            "\"schema_version\": {}",
            crate::BENCH_SCHEMA_VERSION
        )));
        assert!(json.contains("take_guard_abduction"));
        assert!(json.contains("double_branch_mus"));
        let table = format_results(&results);
        assert!(table.contains("insert_round_trip"));
    }
}
