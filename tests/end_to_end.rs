//! Cross-crate integration tests: synthesis goals exercised through the
//! public facade, spanning the logic, solver, horn, types, core, parser,
//! and lang crates together.
//!
//! The heavier goals run in release mode via the benchmark harness
//! (`cargo run -p synquid-bench --bin report`); here we keep budgets small
//! and assert on a portfolio (at least a given number of goals must
//! synthesize) plus a few individually-required fast goals. Synthesized
//! programs are additionally re-validated with the standalone round-trip
//! type checker and executed with the reference interpreter.

use std::time::Duration;
use synquid::core::{Evaluator, TypeChecker};
use synquid::lang::benchmarks::{max_n, table1};
use synquid::oracle::{CVal, Checker, GenStats, Generator, LogicEnv, LogicVal, Rng};
use synquid::prelude::*;

/// Validates a synthesized program with the runtime oracle: seeded random
/// inputs satisfying the argument refinements, outputs checked against
/// the goal's result type (postcondition and datatype invariants) by the
/// measure interpreter. This replaces the seed-era ad-hoc reference
/// closures — the refinement type itself is the executable specification.
fn oracle_validate(goal: &Goal, program: &Program, cases: usize, seed: u64) {
    let ints = vec![RType::int(); goal.schema.type_vars.len()];
    let mono = goal.schema.instantiate(&ints);
    let (args, ret) = mono.uncurry();
    let datatypes = goal.env.datatypes();
    let checker = Checker::new(datatypes);
    let generator = Generator::new(datatypes);
    let mut rng = Rng::new(seed);
    let mut stats = GenStats::default();
    for case in 0..cases {
        let mut env = LogicEnv::new();
        let mut inputs = Vec::new();
        for (name, ty) in &args {
            let v = generator
                .generate(&mut rng, ty, &env, &mut stats)
                .expect("input generation succeeds");
            env.insert(name.clone(), LogicVal::of(&v));
            inputs.push(v);
        }
        let values: Vec<_> = inputs.iter().map(CVal::to_value).collect();
        let mut eval = Evaluator::default();
        let out = eval
            .run(program, &values)
            .unwrap_or_else(|e| panic!("case {case}: {} crashed on {inputs:?}: {e}", goal.name));
        let out = CVal::from_value(&out).expect("first-order output");
        assert_eq!(
            checker.check(&out, &ret, &env),
            Ok(true),
            "case {case}: {} violated its spec on inputs {inputs:?} with output {out}",
            goal.name
        );
    }
}

fn grouped_goal(group: &str, name: &str) -> (Goal, (usize, usize)) {
    let bench = table1()
        .into_iter()
        .find(|b| b.group == group && b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {group}/{name}"));
    let goal = (bench
        .goal
        .unwrap_or_else(|| panic!("{name} is not transcribed")))();
    (goal, bench.bounds)
}

fn named_goal(name: &str) -> (Goal, (usize, usize)) {
    grouped_goal("List", name)
}

fn run_named(name: &str, timeout_secs: u64) -> RunResult {
    let (goal, bounds) = named_goal(name);
    run_goal(
        &goal,
        Variant::Default.config(Duration::from_secs(timeout_secs), bounds),
    )
}

#[test]
fn max2_synthesizes_a_conditional_that_computes_max() {
    let goal = max_n(2);
    let config = Variant::Default.config(Duration::from_secs(60), (1, 0));
    let mut synthesizer = Synthesizer::new(config);
    let result = synthesizer
        .synthesize(&goal)
        .expect("max2 should synthesize");
    let text = result.program.to_string();
    assert!(text.contains("if"), "expected a conditional, got {text}");

    // The synthesized program really computes the maximum: the oracle
    // checks random inputs against `{Int | ν ≥ x1 ∧ ν ≥ x2 ∧ (ν = x1 ∨ ν = x2)}`.
    oracle_validate(&goal, &result.program, 50, 42);
}

#[test]
fn is_empty_synthesizes_and_is_behaviourally_correct() {
    let (goal, _) = named_goal("is empty");
    let config = Variant::Default.config(Duration::from_secs(60), (1, 1));
    let mut synthesizer = Synthesizer::new(config);
    let result = synthesizer
        .synthesize(&goal)
        .expect("is empty should synthesize");

    // Static check: the program round-trip type-checks against the goal.
    let mut checker = TypeChecker::new();
    checker
        .check_goal(&goal, &result.program)
        .expect("synthesized is_empty should type-check");

    // Dynamic check: the oracle fuzzes it against `{Bool | ν ⇔ len xs = 0}`,
    // covering the empty list and many non-empty ones.
    oracle_validate(&goal, &result.program, 50, 42);
}

#[test]
fn portfolio_of_fast_benchmarks_synthesizes() {
    // A portfolio of the quick benchmarks with a modest per-goal budget:
    // the reproduction is considered healthy if most of these succeed
    // (slower benchmarks are tracked in EXPERIMENTS.md, not here).
    let names = [
        "is empty",
        "i-th element",
        "insert at end",
        "reverse",
        "length using fold",
    ];
    let mut solved = 0usize;
    for name in names {
        let result = run_named(name, 30);
        eprintln!(
            "portfolio: {name}: solved={} time={:.2}s",
            result.solved, result.time_secs
        );
        if result.solved {
            solved += 1;
        }
    }
    assert!(
        solved >= 4,
        "expected at least 4 of {} portfolio benchmarks to synthesize, got {solved}",
        names.len()
    );
}

#[test]
fn textual_specs_synthesize_through_the_same_pipeline() {
    // The surface-language path end to end: specs/list.sq → parse →
    // desugar → synthesize → validate with the round-trip checker.
    let spec = synquid::lang::spec::load_corpus_file("list").expect("specs/list.sq loads");
    let goal = spec
        .goals
        .iter()
        .find(|g| g.name == "is_empty")
        .expect("list.sq declares is_empty");
    let config = Variant::Default.config(Duration::from_secs(60), (1, 1));
    let mut synthesizer = Synthesizer::new(config);
    let result = synthesizer
        .synthesize(goal)
        .expect("is_empty from the .sq corpus should synthesize");
    let mut checker = TypeChecker::new();
    checker
        .check_goal(goal, &result.program)
        .expect("the synthesized program should round-trip type-check");
}

#[test]
fn cli_batch_mode_smoke_test_with_jobs_and_stats() {
    // The satellite smoke test for `--jobs N`: the installed binary runs
    // a batch with two workers, prints per-goal statistics and the
    // shared cache counters, and exits 0. Restricted to the fast
    // `is_empty` goal: with more workers than cores, deeper portfolio
    // rungs race (and lose) on wall-clock, and this test checks CLI
    // plumbing, not synthesis depth — the engine's multi-goal behaviour
    // is pinned by `crates/engine/tests/determinism.rs`.
    let spec = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/list.sq");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_synquid"))
        .args([
            "--jobs",
            "2",
            "--stats",
            "--timeout",
            "120",
            "--goal",
            "is_empty",
            spec,
        ])
        .output()
        .expect("the synquid binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "expected exit 0\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("solved in"),
        "no solution reported:\n{stdout}"
    );
    assert!(
        stdout.contains("batch: 1 goal(s), 2 worker(s)"),
        "batch summary missing:\n{stdout}"
    );
    assert!(
        stdout.contains("memo hits"),
        "enumeration counters missing:\n{stdout}"
    );
    assert!(
        stdout.contains("validity cache:"),
        "cache counters missing:\n{stdout}"
    );
}

#[test]
fn cli_rejects_bad_usage_with_exit_code_2() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_synquid"))
        .args(["--jobs", "0", "x.sq"])
        .output()
        .expect("the synquid binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--jobs needs a positive integer"),
        "{stderr}"
    );
}

#[test]
fn timeout_errors_name_the_goal_that_ran_out_of_budget() {
    // The satellite fix: `SynthesisError::Timeout` carries the goal name,
    // so batch error messages can say *which* goal timed out.
    let (goal, bounds) = named_goal("reverse");
    let config = Variant::Default.config(Duration::from_millis(1), bounds);
    let mut synthesizer = Synthesizer::new(config);
    let err = synthesizer
        .synthesize(&goal)
        .expect_err("a 1ms budget must time out");
    assert_eq!(err.goal_name(), Some("reverse"));
    assert_eq!(err.to_string(), "goal reverse: synthesis timed out");
}

#[test]
fn spec_errors_surface_as_located_diagnostics_through_the_facade() {
    let err = synquid::parser::load_str("inc :: x: Int -> {Int | _v == m + 1}")
        .expect_err("unbound variable must be rejected");
    let rendered = err.to_string();
    assert!(rendered.contains("unbound variable `m`"), "{rendered}");
    assert!(rendered.contains("1:31"), "{rendered}");
}

#[test]
fn report_structures_cover_the_full_paper_tables() {
    let rows = table1();
    assert_eq!(rows.len(), 64);
    let transcribed = rows.iter().filter(|b| b.goal.is_some()).count();
    assert!(
        transcribed >= 30,
        "expected at least 30 transcribed Table 1 rows, got {transcribed}"
    );
    assert_eq!(synquid::lang::benchmarks::table2().len(), 18);
    let fam = synquid::lang::benchmarks::sygus(6);
    assert_eq!(fam.len(), 10);
}

#[test]
fn every_transcribed_goal_builds_a_well_formed_schema() {
    for bench in table1() {
        let Some(build) = bench.goal else { continue };
        let goal = build();
        assert!(
            goal.schema.ty.is_function(),
            "{} should be a function goal",
            bench.name
        );
        let (args, ret) = goal.schema.ty.uncurry();
        assert!(!args.is_empty(), "{} has no arguments", bench.name);
        assert!(ret.is_scalar(), "{} has a non-scalar result", bench.name);
    }
}

#[test]
fn verification_rejects_an_incorrect_candidate_type() {
    // End-to-end negative test through the facade: {Int | ν = 1} is not a
    // subtype of {Int | ν = 0}.
    let env = Environment::new();
    let mut solver = synquid::types::ConstraintSolver::default();
    let mut smt = Smt::new();
    let one = RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(1)));
    let zero = RType::refined(BaseType::Int, Term::value_var(Sort::Int).eq(Term::int(0)));
    assert!(solver.subtype(&env, &one, &zero, &mut smt, "neg").is_err());
    assert!(solver
        .subtype(&env, &one, &RType::pos(), &mut smt, "pos")
        .is_ok());
}

#[test]
#[ignore = "BST-insert checking needs per-occurrence predicate-unknown instantiation (EXPERIMENTS.md, known gaps)"]
fn hand_written_bst_insert_type_checks_against_the_paper_spec() {
    // The Sec. 2 example program for BST insertion, validated by the
    // standalone checker (synthesis of this goal is exercised by the
    // benchmark harness; checking is much cheaper and belongs here).
    use synquid::core::Program;
    let (goal, _) = grouped_goal("BST", "insert");
    let body = Program::Match(
        Box::new(Program::var("t")),
        vec![
            synquid::core::Case {
                constructor: "Empty".into(),
                binders: vec![],
                body: Program::apply(
                    "Node",
                    vec![
                        Program::var("x"),
                        Program::var("Empty"),
                        Program::var("Empty"),
                    ],
                ),
            },
            synquid::core::Case {
                constructor: "Node".into(),
                binders: vec!["y".into(), "l".into(), "r".into()],
                body: Program::ite(
                    Program::apply(
                        "and",
                        vec![
                            Program::apply("leqg", vec![Program::var("x"), Program::var("y")]),
                            Program::apply("leqg", vec![Program::var("y"), Program::var("x")]),
                        ],
                    ),
                    Program::var("t"),
                    Program::ite(
                        Program::apply("leqg", vec![Program::var("y"), Program::var("x")]),
                        Program::apply(
                            "Node",
                            vec![
                                Program::var("y"),
                                Program::var("l"),
                                Program::apply(
                                    "insert",
                                    vec![Program::var("x"), Program::var("r")],
                                ),
                            ],
                        ),
                        Program::apply(
                            "Node",
                            vec![
                                Program::var("y"),
                                Program::apply(
                                    "insert",
                                    vec![Program::var("x"), Program::var("l")],
                                ),
                                Program::var("r"),
                            ],
                        ),
                    ),
                ),
            },
        ],
    );
    let program = Program::Fix(
        "insert".into(),
        Box::new(Program::lambda("x", Program::lambda("t", body))),
    );
    let mut checker = TypeChecker::new();
    checker
        .check_goal(&goal, &program)
        .expect("the paper's BST insert should type-check");
}
